//! The sharded session store: tenants, sessions, the batched submit
//! path, durability, and admission control.
//!
//! ## Ownership
//!
//! Every tenant lives on exactly one shard, chosen by hashing the
//! tenant id, and the shard owns **both** the tenant's
//! [`BudgetLedger`] and all of the tenant's session
//! [`SessionDriver`]s under one mutex:
//!
//! ```text
//! SessionStore
//! ├── Shard 0 ─ Mutex ─┬─ sessions: SessionId → SessionDriver
//! │                    ├─ ledgers:  TenantId  → BudgetLedger
//! │                    └─ wal:      Option<LedgerWal>
//! ├── Shard 1 ─ Mutex ─┬─ sessions …
//! │                    └─ ledgers  …
//! ⋮
//! ```
//!
//! Colocating a tenant's ledger with its sessions makes
//! `open_session`'s charge-then-insert atomic under a single lock — no
//! cross-shard transaction, no window where a session exists without
//! its receipt — and means any two tenants on different shards never
//! contend.
//!
//! ## Durability
//!
//! A store built with [`SessionStore::with_wal_dir`] (or
//! [`with_wal_sinks`](SessionStore::with_wal_sinks)) writes every
//! budget-bearing operation through a per-shard [`LedgerWal`] **before**
//! applying it in memory and acknowledging it to the caller:
//!
//! 1. derive the receipt with [`BudgetLedger::prepare_charge`] (memory
//!    unchanged);
//! 2. append + fsync the receipt to the shard's WAL;
//! 3. apply the prepared receipt to the in-memory ledger;
//! 4. acknowledge.
//!
//! Under [`FsyncPolicy::Always`] this yields the serving layer's
//! durability contract — *acknowledged ⇒ persisted* — and the failure
//! direction is privacy-safe: a crash between steps 2 and 4 leaves an
//! *unacknowledged* charge on disk, so recovered spent `ε` can exceed,
//! never undercut, what clients were told. Any WAL failure poisons the
//! log and every later budget-bearing operation reports
//! [`ServerError::Durability`]: the store refuses to let the in-memory
//! chain advance past what disk can prove. Recovery
//! ([`SessionStore::recover_wal_dir`]) replays each shard's log,
//! re-verifies every tenant chain, drops a torn tail, and resumes
//! appending at the record boundary. Sessions are *not* persisted —
//! their noise state dies with the process by design; only spent
//! budget survives.
//!
//! ## Session lifecycle and admission
//!
//! Each shard runs a logical clock that ticks once per admitted
//! operation. On top of it sit three independently-optional knobs
//! (all off by default, preserving the pre-durability behavior
//! bit-for-bit):
//!
//! - **TTL** ([`ServerConfig::session_ttl`]): a session idle for that
//!   many ticks is evicted lazily — at its next access or at the next
//!   `open_session` sweep — and its id keeps reporting
//!   [`ServerError::SessionEvicted`] (reason `Expired`).
//! - **Cap** ([`ServerConfig::session_cap`]): opening past the
//!   per-shard live-session cap reclaims the least-recently-used
//!   session (reason `Capacity`). Closing a session releases its LRU
//!   slot immediately.
//! - **Admission** ([`ServerConfig::rate_limit`],
//!   [`ServerConfig::shed_threshold`]): per-tenant token buckets
//!   refilled on the logical clock, and a per-shard in-flight gate
//!   checked *before* the lock. Both shed with the retryable
//!   [`ServerError::Overloaded`]; nothing is charged or ticked for a
//!   shed request beyond the admission check itself.
//!
//! ## Determinism
//!
//! A session's answers are a pure function of `(config, seed)`: the
//! driver is opened from `DpRng::seed_from_u64(seed)` and owns its
//! forked noise generators thereafter. The batched
//! [`submit_batch`](SessionStore::submit_batch) path prefetches each
//! session's noise with one buffered fill per shard visit, which by the
//! `BatchSample` stream-equivalence contract cannot change any answer —
//! so batching, batch composition, and thread interleaving across
//! *different* sessions are all observationally irrelevant. Only the
//! per-session order of queries matters, exactly as in the
//! single-session API. The logical clock makes TTL/LRU/rate-limit
//! behavior deterministic for any single-threaded call sequence.

use std::collections::{BTreeMap, HashMap};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use std::sync::Arc;

use dp_data::GroupedSnapshot;
use dp_mechanisms::wal::{replay_records, FsyncPolicy, LedgerWal, WalError, WalSink, RECORD_SIZE};
use dp_mechanisms::{BudgetLedger, ChargeReceipt, DpRng};
use svt_core::alg::StandardSvtConfig;
use svt_core::session::SessionDriver;
use svt_core::SvtAnswer;

use crate::dataset::{DatasetRegistry, ScoreUpdate};
use crate::error::{EvictionReason, OverloadCause, ServerError};

/// Result alias for store operations.
pub type Result<T> = std::result::Result<T, ServerError>;

/// Identifies a tenant (an isolated budget domain).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(pub u64);

/// Identifies one session of one tenant. Nonces are store-assigned and
/// never reused, so a closed session's id stays dead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SessionId {
    /// The owning tenant.
    pub tenant: TenantId,
    /// Store-assigned per-shard nonce.
    pub nonce: u64,
}

/// One query of a [`SessionStore::submit_batch`] call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchQuery {
    /// The session to ask.
    pub session: SessionId,
    /// The true query answer `q(D)`.
    pub query_answer: f64,
    /// The threshold `T` to test against.
    pub threshold: f64,
}

/// A point-in-time snapshot of one session's protocol state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionStatus {
    /// Queries successfully answered.
    pub queries_asked: usize,
    /// Positive (`⊤`) answers so far.
    pub positives: usize,
    /// Whether the session has spent its `c` positives.
    pub exhausted: bool,
}

/// A point-in-time copy of one tenant's budget standing and receipt
/// chain — what an auditor is handed.
#[derive(Debug, Clone, PartialEq)]
pub struct LedgerView {
    /// The tenant audited.
    pub tenant: TenantId,
    /// Configured total budget.
    pub total: f64,
    /// Budget consumed so far.
    pub spent: f64,
    /// Budget still available.
    pub remaining: f64,
    /// The full hash-chained receipt run (verifiable offline via
    /// [`dp_mechanisms::ledger::audit_receipts`]).
    pub receipts: Vec<ChargeReceipt>,
}

/// Per-tenant token-bucket admission: `burst` tokens to start, one
/// consumed per admitted operation, refilled at `rate_per_tick` tokens
/// per logical-clock tick of the tenant's shard.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateLimit {
    /// Tokens regained per logical tick (may be fractional or zero).
    pub rate_per_tick: f64,
    /// Bucket capacity — the largest admissible burst.
    pub burst: f64,
}

/// Tuning knobs for a [`SessionStore`]. The lifecycle and admission
/// knobs default to `None` (off), which reproduces the store's
/// behavior before they existed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerConfig {
    /// Number of shards; rounded up to a power of two, minimum 1.
    /// More shards mean less lock contention and more resident memory.
    pub shards: usize,
    /// Evict a session idle for this many logical ticks of its shard
    /// (each admitted operation on the shard is one tick). `None`
    /// disables expiry.
    pub session_ttl: Option<u64>,
    /// Per-shard live-session cap (clamped to at least 1); opening past
    /// it reclaims the least-recently-used session. `None` disables the
    /// cap.
    pub session_cap: Option<usize>,
    /// Shed operations once a shard has this many in flight (0 sheds
    /// everything — useful for drain tests). `None` disables shedding.
    pub shed_threshold: Option<usize>,
    /// Per-tenant token-bucket admission. `None` disables rate
    /// limiting.
    pub rate_limit: Option<RateLimit>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            shards: 16,
            session_ttl: None,
            session_cap: None,
            shed_threshold: None,
            rate_limit: None,
        }
    }
}

/// What [`SessionStore::recover_wal_dir`] rebuilt from the logs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Shard logs replayed.
    pub shards: usize,
    /// Tenant ledgers rebuilt and chain-verified.
    pub tenants: usize,
    /// Whole WAL records accepted across all shards.
    pub records: usize,
    /// Torn-tail bytes dropped across all shards (nonzero after a
    /// mid-write crash).
    pub torn_tail_bytes: usize,
}

#[derive(Debug)]
struct SessionEntry {
    driver: SessionDriver,
    /// The shard tick of this session's last admitted operation; also
    /// its key in the shard's LRU map.
    last_touch: u64,
    /// The tenant's dataset snapshot pinned at open time. Every
    /// item-level query of this session resolves scores against this
    /// one immutable epoch, no matter how many `update_scores` batches
    /// land afterwards. `None` when the tenant had no dataset at open.
    dataset: Option<Arc<GroupedSnapshot>>,
}

#[derive(Debug, Clone, Copy)]
struct TokenBucket {
    tokens: f64,
    last_refill: u64,
}

#[derive(Debug, Default)]
struct ShardState {
    sessions: HashMap<SessionId, SessionEntry>,
    ledgers: HashMap<TenantId, BudgetLedger>,
    /// Eviction tombstones: evicted ids keep reporting *why* they died
    /// instead of degrading to `UnknownSession`.
    evicted: HashMap<SessionId, EvictionReason>,
    /// last-touch tick → session; the leftmost entry is the LRU victim.
    /// Ticks are unique per shard, so this is collision-free.
    lru: BTreeMap<u64, SessionId>,
    buckets: HashMap<TenantId, TokenBucket>,
    wal: Option<LedgerWal>,
    next_nonce: u64,
    clock: u64,
}

impl ShardState {
    /// Advances the logical clock; each admitted operation occupies one
    /// tick.
    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Token-bucket admission for `tenant` at tick `now`.
    fn admit_tenant(&mut self, tenant: TenantId, limit: RateLimit, now: u64) -> bool {
        let bucket = self.buckets.entry(tenant).or_insert(TokenBucket {
            tokens: limit.burst,
            last_refill: now,
        });
        let elapsed = now.saturating_sub(bucket.last_refill) as f64;
        bucket.tokens = (bucket.tokens + elapsed * limit.rate_per_tick).min(limit.burst);
        bucket.last_refill = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Removes `session` from the live set and tombstones it.
    fn evict(&mut self, session: SessionId, reason: EvictionReason) {
        if let Some(entry) = self.sessions.remove(&session) {
            self.lru.remove(&entry.last_touch);
            self.evicted.insert(session, reason);
        }
    }

    /// Evicts every session idle past `ttl`, oldest first.
    fn sweep_expired(&mut self, ttl: u64) {
        loop {
            let front = self.lru.iter().next().map(|(&t, &s)| (t, s));
            let Some((touch, session)) = front else { break };
            if self.clock.saturating_sub(touch) >= ttl {
                self.evict(session, EvictionReason::Expired);
            } else {
                break;
            }
        }
    }

    /// Reclaims LRU sessions until a new one fits under `cap`.
    fn evict_to_cap(&mut self, cap: usize) {
        while self.sessions.len() >= cap {
            let victim = self.lru.iter().next().map(|(_, &s)| s);
            let Some(session) = victim else { break };
            self.evict(session, EvictionReason::Capacity);
        }
    }

    /// Checks tombstone / liveness / TTL for `session` and, if alive,
    /// stamps it with tick `now` (refreshing its LRU position).
    fn admit_session(&mut self, session: SessionId, ttl: Option<u64>, now: u64) -> Result<()> {
        if let Some(&reason) = self.evicted.get(&session) {
            return Err(ServerError::SessionEvicted { session, reason });
        }
        let Some(entry) = self.sessions.get(&session) else {
            return Err(ServerError::UnknownSession(session));
        };
        if let Some(ttl) = ttl {
            if now.saturating_sub(entry.last_touch) >= ttl {
                self.evict(session, EvictionReason::Expired);
                return Err(ServerError::SessionEvicted {
                    session,
                    reason: EvictionReason::Expired,
                });
            }
        }
        let entry = self.sessions.get_mut(&session).expect("checked above");
        self.lru.remove(&entry.last_touch);
        entry.last_touch = now;
        self.lru.insert(now, session);
        Ok(())
    }
}

#[derive(Debug, Default)]
struct Shard {
    state: Mutex<ShardState>,
    /// Operations currently inside (or queued on) this shard — the shed
    /// gate reads it *before* the lock, so saturation is visible
    /// without waiting on the mutex.
    in_flight: AtomicUsize,
}

/// Releases the shed gate's in-flight slot on drop.
struct ShardPermit<'a> {
    gate: Option<&'a AtomicUsize>,
}

impl Drop for ShardPermit<'_> {
    fn drop(&mut self) {
        if let Some(gate) = self.gate {
            gate.fetch_sub(1, Ordering::AcqRel);
        }
    }
}

/// SplitMix64 finalizer: tenant ids are often small sequential
/// integers, so the raw id would pile every tenant onto shard 0.
#[inline]
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// The WAL filename for shard `index` inside a WAL directory.
fn wal_file_name(index: usize) -> String {
    format!("wal-{index:03}.log")
}

/// The multi-tenant session store. See the module docs for the
/// ownership, durability, and determinism story.
///
/// ```
/// use dp_mechanisms::SvtBudget;
/// use svt_core::alg::StandardSvtConfig;
/// use svt_server::{ServerConfig, SessionStore, TenantId};
///
/// let store = SessionStore::new(ServerConfig::default());
/// let tenant = TenantId(1);
/// store.register_tenant(tenant, 2.0)?;
/// let config = StandardSvtConfig {
///     budget: SvtBudget::halves(0.5).expect("valid budget"),
///     sensitivity: 1.0,
///     c: 3,
///     monotonic: true,
/// };
/// let session = store.open_session(tenant, config, 42)?;
/// let answer = store.submit(session, -1e6, 0.0)?;
/// assert!(!answer.is_positive());
/// store.verify_tenant(tenant)?; // receipt chain is intact
/// # Ok::<(), svt_server::ServerError>(())
/// ```
#[derive(Debug)]
pub struct SessionStore {
    shards: Box<[Shard]>,
    mask: u64,
    config: ServerConfig,
    /// Per-tenant live datasets and their published snapshots. Kept
    /// outside the shards: dataset churn must never contend with the
    /// sharded session/ledger locks, and snapshots are not persisted —
    /// like sessions, they are memory-only by design (only spent
    /// budget survives recovery).
    datasets: DatasetRegistry,
}

impl SessionStore {
    /// Creates an ephemeral store (no WAL) with `config.shards`
    /// (rounded up to a power of two) empty shards.
    pub fn new(config: ServerConfig) -> Self {
        let n = config.shards.max(1).next_power_of_two();
        let states = (0..n).map(|_| ShardState::default()).collect();
        Self::from_states(config, states)
    }

    fn from_states(config: ServerConfig, states: Vec<ShardState>) -> Self {
        let n = states.len();
        debug_assert!(n.is_power_of_two());
        let shards: Vec<Shard> = states
            .into_iter()
            .map(|state| Shard {
                state: Mutex::new(state),
                in_flight: AtomicUsize::new(0),
            })
            .collect();
        Self {
            shards: shards.into_boxed_slice(),
            mask: n as u64 - 1,
            config,
            datasets: DatasetRegistry::default(),
        }
    }

    /// Creates a durable store writing each shard's ledger traffic
    /// through the supplied sinks (one per shard — `sinks.len()` must
    /// equal the rounded shard count). Intended for tests and fault
    /// injection; production callers use
    /// [`with_wal_dir`](Self::with_wal_dir).
    ///
    /// # Panics
    /// If `sinks.len()` differs from the rounded shard count.
    pub fn with_wal_sinks(
        config: ServerConfig,
        sinks: Vec<Box<dyn WalSink>>,
        policy: FsyncPolicy,
    ) -> Self {
        let n = config.shards.max(1).next_power_of_two();
        assert_eq!(
            sinks.len(),
            n,
            "need exactly one WAL sink per shard ({n} shards)"
        );
        let states = sinks
            .into_iter()
            .map(|sink| ShardState {
                wal: Some(LedgerWal::with_sink(sink, policy)),
                ..Default::default()
            })
            .collect();
        Self::from_states(config, states)
    }

    /// Creates a durable store with one WAL file per shard
    /// (`wal-000.log`, `wal-001.log`, …) under `dir`, creating files as
    /// needed. Use on a *fresh* directory; to reopen existing logs, use
    /// [`recover_wal_dir`](Self::recover_wal_dir).
    ///
    /// # Errors
    /// [`ServerError::Durability`] if a log file cannot be opened.
    pub fn with_wal_dir(config: ServerConfig, dir: &Path, policy: FsyncPolicy) -> Result<Self> {
        let n = config.shards.max(1).next_power_of_two();
        let mut states = Vec::with_capacity(n);
        for i in 0..n {
            let wal = LedgerWal::open(&dir.join(wal_file_name(i)), policy)?;
            states.push(ShardState {
                wal: Some(wal),
                ..Default::default()
            });
        }
        Ok(Self::from_states(config, states))
    }

    /// Rebuilds a durable store from the WAL directory a crashed (or
    /// cleanly stopped) store left behind: replays every shard log,
    /// re-verifies every tenant chain, truncates torn tails, and
    /// resumes appending. `config.shards` must match the shard count
    /// the logs were written with — tenants are sharded by hash, so a
    /// different count would scatter them into the wrong logs.
    ///
    /// Sessions do not survive: their noise state is memory-only by
    /// design. Spent budget does — the privacy-relevant invariant is
    /// that every *acknowledged* charge is in the log, so recovered
    /// spent `ε` is never an undercount.
    ///
    /// # Errors
    /// [`ServerError::Durability`] on unreadable logs, mid-log
    /// corruption (attributed to the exact record), a chain that fails
    /// re-verification, or a tenant found in the wrong shard's log.
    pub fn recover_wal_dir(
        config: ServerConfig,
        dir: &Path,
        policy: FsyncPolicy,
    ) -> Result<(Self, RecoveryReport)> {
        let n = config.shards.max(1).next_power_of_two();
        let paths: Vec<PathBuf> = (0..n).map(|i| dir.join(wal_file_name(i))).collect();
        let (mut store, report) = Self::recover(config, n, |i| {
            let path = &paths[i];
            if path.exists() {
                std::fs::read(path).map_err(|e| WalError::Io {
                    op: "read",
                    message: e.to_string(),
                })
            } else {
                Ok(Vec::new())
            }
        })?;
        // Reopen each file truncated to its valid prefix so appends
        // resume at a record boundary (every accepted record is
        // RECORD_SIZE bytes).
        for (i, path) in paths.iter().enumerate() {
            let valid_len = {
                let state = store.shards[i].state.get_mut().expect("fresh store");
                (Self::shard_record_count(state) * RECORD_SIZE) as u64
            };
            let wal = LedgerWal::open_truncated(path, valid_len, policy)?;
            store.shards[i].state.get_mut().expect("fresh store").wal = Some(wal);
        }
        Ok((store, report))
    }

    /// Rebuilds a durable store from in-memory shard logs (the bytes a
    /// crashed writer left in its sinks), continuing onto `sinks` —
    /// which must be **fresh**: the store re-appends each log's valid
    /// prefix into its sink before resuming, so the chain stays
    /// contiguous across repeated crash/recover cycles. Test and
    /// fault-injection counterpart of
    /// [`recover_wal_dir`](Self::recover_wal_dir).
    ///
    /// # Errors
    /// As for [`recover_wal_dir`](Self::recover_wal_dir).
    ///
    /// # Panics
    /// If `logs.len()` or `sinks.len()` differs from the rounded shard
    /// count.
    pub fn recover_with_sinks(
        config: ServerConfig,
        logs: &[Vec<u8>],
        sinks: Vec<Box<dyn WalSink>>,
        policy: FsyncPolicy,
    ) -> Result<(Self, RecoveryReport)> {
        let n = config.shards.max(1).next_power_of_two();
        assert_eq!(logs.len(), n, "need one log per shard ({n} shards)");
        assert_eq!(sinks.len(), n, "need one sink per shard ({n} shards)");
        let (mut store, report) = Self::recover(config, n, |i| Ok(logs[i].clone()))?;
        for (i, mut sink) in sinks.into_iter().enumerate() {
            let state = store.shards[i].state.get_mut().expect("fresh store");
            let valid_len = Self::shard_record_count(state) * RECORD_SIZE;
            if valid_len > 0 {
                sink.append(&logs[i][..valid_len])?;
                sink.sync()?;
            }
            state.wal = Some(LedgerWal::with_sink(sink, policy));
        }
        Ok((store, report))
    }

    /// Records on a recovered shard: registrations plus charges.
    fn shard_record_count(state: &ShardState) -> usize {
        state.ledgers.values().map(|l| 1 + l.receipts().len()).sum()
    }

    /// Shared replay core: builds shard states (no WALs yet) from the
    /// per-shard log bytes produced by `read_log`.
    fn recover(
        config: ServerConfig,
        n: usize,
        mut read_log: impl FnMut(usize) -> std::result::Result<Vec<u8>, WalError>,
    ) -> Result<(Self, RecoveryReport)> {
        let mut states = Vec::with_capacity(n);
        let mut report = RecoveryReport {
            shards: n,
            tenants: 0,
            records: 0,
            torn_tail_bytes: 0,
        };
        let mask = n as u64 - 1;
        for i in 0..n {
            let bytes = read_log(i)?;
            let replay = replay_records(&bytes)?;
            report.records += replay.records;
            report.torn_tail_bytes += replay.torn_tail_bytes;
            let mut state = ShardState::default();
            for (tenant, ledger) in replay.ledgers {
                let home = (mix64(tenant) & mask) as usize;
                if home != i {
                    return Err(ServerError::Durability(WalError::Io {
                        op: "recover",
                        message: format!(
                            "tenant {tenant} found in shard {i}'s log but hashes to \
                             shard {home}; was the store written with a different \
                             shard count?"
                        ),
                    }));
                }
                state.next_nonce = state.next_nonce.max(
                    ledger
                        .receipts()
                        .iter()
                        .map(|r| r.session + 1)
                        .max()
                        .unwrap_or(0),
                );
                report.tenants += 1;
                state.ledgers.insert(TenantId(tenant), ledger);
            }
            states.push(state);
        }
        Ok((Self::from_states(config, states), report))
    }

    /// Number of shards (always a power of two).
    #[inline]
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Whether any shard's WAL has been poisoned by a write failure —
    /// if so, budget-bearing operations are being refused store-wide on
    /// the affected shard until recovery.
    pub fn durability_poisoned(&self) -> bool {
        (0..self.shards.len()).any(|i| {
            self.lock_shard(i)
                .wal
                .as_ref()
                .is_some_and(LedgerWal::is_poisoned)
        })
    }

    /// The shard index a tenant (and all its sessions) lives on.
    #[inline]
    fn shard_of(&self, tenant: TenantId) -> usize {
        (mix64(tenant.0) & self.mask) as usize
    }

    fn lock_shard(&self, index: usize) -> std::sync::MutexGuard<'_, ShardState> {
        self.shards[index]
            .state
            .lock()
            .expect("shard mutex poisoned: a holder panicked")
    }

    /// The shed gate: claims an in-flight slot on `index` or reports
    /// [`ServerError::Overloaded`] without touching the shard lock.
    fn admit_shard(&self, index: usize) -> Result<ShardPermit<'_>> {
        let Some(limit) = self.config.shed_threshold else {
            return Ok(ShardPermit { gate: None });
        };
        let gate = &self.shards[index].in_flight;
        if gate.fetch_add(1, Ordering::AcqRel) >= limit {
            gate.fetch_sub(1, Ordering::AcqRel);
            return Err(ServerError::Overloaded(OverloadCause::ShardSaturated {
                shard: index,
            }));
        }
        Ok(ShardPermit { gate: Some(gate) })
    }

    /// Registers a tenant with a total privacy budget, creating its
    /// empty receipt chain. On a durable store the registration is
    /// WAL-logged before it is acknowledged.
    ///
    /// # Errors
    /// [`ServerError::TenantAlreadyRegistered`] on a duplicate;
    /// [`ServerError::Ledger`] on an invalid budget;
    /// [`ServerError::Durability`] if the WAL write fails (the tenant
    /// is not registered).
    pub fn register_tenant(&self, tenant: TenantId, total_epsilon: f64) -> Result<()> {
        let mut shard = self.lock_shard(self.shard_of(tenant));
        if shard.ledgers.contains_key(&tenant) {
            return Err(ServerError::TenantAlreadyRegistered(tenant));
        }
        let ledger = BudgetLedger::new(tenant.0, total_epsilon)?;
        if let Some(wal) = shard.wal.as_mut() {
            wal.append_tenant(tenant.0, total_epsilon)?;
        }
        shard.ledgers.insert(tenant, ledger);
        Ok(())
    }

    /// Opens a session for `tenant`, charging the session's full SVT
    /// budget (`ε₁ + ε₂ + ε₃` — the whole run's cost, per Theorem 4;
    /// every ⊥ thereafter is free) against the tenant's ledger and
    /// recording the receipt. On a durable store the receipt reaches
    /// the WAL **before** the in-memory ledger advances or the session
    /// exists — a crash at any point never acknowledges an unpersisted
    /// charge. Charge and session insertion happen under one shard
    /// lock, so a session never exists without its receipt.
    ///
    /// With a TTL or cap configured, expired sessions are swept and the
    /// LRU session is reclaimed here as needed.
    ///
    /// The session's answers are a pure function of `(config, seed)`.
    ///
    /// # Errors
    /// [`ServerError::UnknownTenant`]; [`ServerError::Overloaded`]
    /// (retryable) when admission sheds the open; [`ServerError::Svt`]
    /// on an invalid configuration; [`ServerError::Ledger`] when the
    /// budget does not fit; [`ServerError::Durability`] when the WAL
    /// write fails (in every error case the session is not created and
    /// nothing is charged).
    pub fn open_session(
        &self,
        tenant: TenantId,
        config: StandardSvtConfig,
        seed: u64,
    ) -> Result<SessionId> {
        let index = self.shard_of(tenant);
        let _permit = self.admit_shard(index)?;
        // Pin the tenant's published dataset snapshot *before* taking
        // the shard lock: the registry has its own locks and must never
        // nest inside a shard's. An update that returned before this
        // open started is already published, so the pin can only be
        // same-or-newer than any epoch the caller has observed.
        let dataset = self.datasets.snapshot(tenant);
        let mut shard = self.lock_shard(index);
        let now = shard.tick();
        if let Some(limit) = self.config.rate_limit {
            if !shard.admit_tenant(tenant, limit, now) {
                return Err(ServerError::Overloaded(OverloadCause::TenantRateLimited(
                    tenant,
                )));
            }
        }
        if !shard.ledgers.contains_key(&tenant) {
            return Err(ServerError::UnknownTenant(tenant));
        }
        if let Some(ttl) = self.config.session_ttl {
            shard.sweep_expired(ttl);
        }
        if let Some(cap) = self.config.session_cap {
            shard.evict_to_cap(cap.max(1));
        }
        // Validate the config (and perform the session's draws) before
        // touching the ledger: a rejected config must charge nothing.
        let mut rng = DpRng::seed_from_u64(seed);
        let driver = SessionDriver::open(config, &mut rng)?;
        let nonce = shard.next_nonce;
        let prepared = shard
            .ledgers
            .get(&tenant)
            .expect("presence checked above")
            .prepare_charge(nonce, "svt session open", config.budget.total())?;
        if let Some(wal) = shard.wal.as_mut() {
            wal.append_charge(&prepared)?;
        }
        shard
            .ledgers
            .get_mut(&tenant)
            .expect("presence checked above")
            .apply_prepared(prepared)?;
        shard.next_nonce += 1;
        let id = SessionId { tenant, nonce };
        shard.sessions.insert(
            id,
            SessionEntry {
                driver,
                last_touch: now,
                dataset,
            },
        );
        shard.lru.insert(now, id);
        Ok(id)
    }

    /// Asks one query against one session.
    ///
    /// # Errors
    /// [`ServerError::Overloaded`] (retryable) when admission sheds the
    /// query; [`ServerError::SessionEvicted`] when the store reclaimed
    /// the session; [`ServerError::UnknownSession`];
    /// [`ServerError::Svt`] when the session rejects the query (halted,
    /// non-finite input).
    pub fn submit(
        &self,
        session: SessionId,
        query_answer: f64,
        threshold: f64,
    ) -> Result<SvtAnswer> {
        let index = self.shard_of(session.tenant);
        let _permit = self.admit_shard(index)?;
        let mut shard = self.lock_shard(index);
        let now = shard.tick();
        if let Some(limit) = self.config.rate_limit {
            if !shard.admit_tenant(session.tenant, limit, now) {
                return Err(ServerError::Overloaded(OverloadCause::TenantRateLimited(
                    session.tenant,
                )));
            }
        }
        shard.admit_session(session, self.config.session_ttl, now)?;
        let driver = &mut shard
            .sessions
            .get_mut(&session)
            .expect("admitted above")
            .driver;
        Ok(driver.ask(query_answer, threshold)?)
    }

    /// Registers `tenant`'s dataset: builds the live score table, sorts
    /// it once, and publishes the epoch-0 snapshot. Sessions opened from
    /// now on pin the currently published snapshot; sessions opened
    /// before this call keep answering [`submit_item`](Self::submit_item)
    /// with [`ServerError::NoDataset`].
    ///
    /// Datasets evolve through [`update_scores`](Self::update_scores) —
    /// re-registering is rejected rather than silently replacing
    /// history.
    ///
    /// # Errors
    /// [`ServerError::UnknownTenant`];
    /// [`ServerError::DatasetAlreadyRegistered`];
    /// [`ServerError::Dataset`] on empty or non-finite scores.
    pub fn register_dataset(&self, tenant: TenantId, scores: &[f64]) -> Result<u64> {
        // Tenancy check under the shard lock, then *drop* it: the
        // registry's locks never nest inside a shard's.
        {
            let shard = self.lock_shard(self.shard_of(tenant));
            if !shard.ledgers.contains_key(&tenant) {
                return Err(ServerError::UnknownTenant(tenant));
            }
        }
        self.datasets.register(tenant, scores)
    }

    /// Applies one atomic batch of score updates to `tenant`'s live
    /// dataset and publishes the resulting snapshot, returning its
    /// epoch. Each update relocates its item incrementally — no re-sort
    /// — and existing sessions keep their pinned pre-update snapshots
    /// untouched; only sessions opened after this returns observe the
    /// new epoch.
    ///
    /// A rejected batch (out-of-range item, non-finite resulting score)
    /// applies nothing and the published snapshot does not move.
    ///
    /// # Errors
    /// [`ServerError::NoDataset`]; [`ServerError::ItemOutOfRange`];
    /// [`ServerError::Dataset`].
    pub fn update_scores(&self, tenant: TenantId, updates: &[ScoreUpdate]) -> Result<u64> {
        self.datasets.update(tenant, updates)
    }

    /// The epoch of `tenant`'s currently published dataset snapshot —
    /// what a session opened right now would pin.
    ///
    /// # Errors
    /// [`ServerError::NoDataset`].
    pub fn dataset_epoch(&self, tenant: TenantId) -> Result<u64> {
        self.datasets
            .snapshot(tenant)
            .map(|s| s.epoch())
            .ok_or(ServerError::NoDataset(tenant))
    }

    /// The epoch of the dataset snapshot pinned by `session` at open
    /// time. Stable for the session's whole life: updates published
    /// after the open do not move it. Read-only (no tick, no LRU
    /// refresh).
    ///
    /// # Errors
    /// [`ServerError::SessionEvicted`]; [`ServerError::UnknownSession`];
    /// [`ServerError::NoDataset`] when the tenant had no dataset when
    /// the session opened.
    pub fn session_dataset_epoch(&self, session: SessionId) -> Result<u64> {
        let shard = self.lock_shard(self.shard_of(session.tenant));
        if let Some(&reason) = shard.evicted.get(&session) {
            return Err(ServerError::SessionEvicted { session, reason });
        }
        let entry = shard
            .sessions
            .get(&session)
            .ok_or(ServerError::UnknownSession(session))?;
        entry
            .dataset
            .as_ref()
            .map(|s| s.epoch())
            .ok_or(ServerError::NoDataset(session.tenant))
    }

    /// Asks one query *by item*: the true answer is the item's score in
    /// the dataset snapshot the session pinned at open time. This is
    /// the paper's interactive protocol over a served dataset — the
    /// analyst names items, the store resolves `q(D)` against one
    /// immutable epoch, and the SVT session answers `⊤`/`⊥` as usual.
    ///
    /// # Errors
    /// As for [`submit`](Self::submit), plus
    /// [`ServerError::NoDataset`] when the session pinned no dataset
    /// and [`ServerError::ItemOutOfRange`] for an item outside the
    /// pinned snapshot.
    pub fn submit_item(
        &self,
        session: SessionId,
        item: usize,
        threshold: f64,
    ) -> Result<SvtAnswer> {
        let index = self.shard_of(session.tenant);
        let _permit = self.admit_shard(index)?;
        let mut shard = self.lock_shard(index);
        let now = shard.tick();
        if let Some(limit) = self.config.rate_limit {
            if !shard.admit_tenant(session.tenant, limit, now) {
                return Err(ServerError::Overloaded(OverloadCause::TenantRateLimited(
                    session.tenant,
                )));
            }
        }
        shard.admit_session(session, self.config.session_ttl, now)?;
        let entry = shard.sessions.get_mut(&session).expect("admitted above");
        let snapshot = entry
            .dataset
            .as_ref()
            .ok_or(ServerError::NoDataset(session.tenant))?;
        if item >= snapshot.len_items() {
            return Err(ServerError::ItemOutOfRange {
                item,
                len: snapshot.len_items(),
            });
        }
        let query_answer = snapshot.score_of_item(item);
        Ok(entry.driver.ask(query_answer, threshold)?)
    }

    /// Answers a batch of queries, possibly spanning many sessions and
    /// tenants. Results are returned in input order, one per query.
    ///
    /// Queries are grouped by shard so each shard is locked once, and
    /// within a shard visit each session's noise is prefetched with a
    /// single buffered fill — the serving-layer payoff of the
    /// `BatchSample` stream-equivalence contract. Answers are
    /// bit-identical to issuing the same per-session query sequences
    /// through [`submit`](Self::submit) one at a time (pinned by test).
    ///
    /// Per-query failures (shed, evicted, unknown session, halted
    /// session, bad input) land in that query's result slot; they do
    /// not disturb the rest of the batch. If a shard's shed gate trips,
    /// every query bound for that shard reports the retryable
    /// [`ServerError::Overloaded`].
    pub fn submit_batch(&self, queries: &[BatchQuery]) -> Vec<Result<SvtAnswer>> {
        let mut results: Vec<Option<Result<SvtAnswer>>> = vec![None; queries.len()];
        // Group query indices per shard, preserving input order within
        // each shard (per-session order is the determinism contract).
        let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
        for (i, q) in queries.iter().enumerate() {
            by_shard[self.shard_of(q.session.tenant)].push(i);
        }
        let mut pending: HashMap<SessionId, usize> = HashMap::new();
        let mut admitted: Vec<usize> = Vec::new();
        for (shard_index, indices) in by_shard.iter().enumerate() {
            if indices.is_empty() {
                continue;
            }
            let permit = match self.admit_shard(shard_index) {
                Ok(p) => p,
                Err(e) => {
                    for &i in indices {
                        results[i] = Some(Err(e.clone()));
                    }
                    continue;
                }
            };
            let mut shard = self.lock_shard(shard_index);
            // Pass 1: admission + lifecycle checks, in input order.
            pending.clear();
            admitted.clear();
            for &i in indices {
                let q = &queries[i];
                let now = shard.tick();
                if let Some(limit) = self.config.rate_limit {
                    if !shard.admit_tenant(q.session.tenant, limit, now) {
                        results[i] = Some(Err(ServerError::Overloaded(
                            OverloadCause::TenantRateLimited(q.session.tenant),
                        )));
                        continue;
                    }
                }
                match shard.admit_session(q.session, self.config.session_ttl, now) {
                    Ok(()) => {
                        *pending.entry(q.session).or_insert(0) += 1;
                        admitted.push(i);
                    }
                    Err(e) => results[i] = Some(Err(e)),
                }
            }
            // Pass 2: one batched noise fill per session per visit.
            for (&session, &count) in pending.iter() {
                if let Some(entry) = shard.sessions.get_mut(&session) {
                    entry.driver.prefetch_noise(count);
                }
            }
            // Pass 3: answer the admitted queries in input order.
            for &i in &admitted {
                let q = &queries[i];
                results[i] = Some(match shard.sessions.get_mut(&q.session) {
                    Some(entry) => entry
                        .driver
                        .ask(q.query_answer, q.threshold)
                        .map_err(ServerError::from),
                    None => Err(ServerError::UnknownSession(q.session)),
                });
            }
            drop(shard);
            drop(permit);
        }
        results
            .into_iter()
            .map(|r| r.expect("every query routed to exactly one shard"))
            .collect()
    }

    /// A snapshot of one session's protocol state. Read-only: does not
    /// tick the shard clock or refresh the session's LRU position, but
    /// does report (and enact) TTL expiry.
    ///
    /// # Errors
    /// [`ServerError::SessionEvicted`]; [`ServerError::UnknownSession`].
    pub fn session_status(&self, session: SessionId) -> Result<SessionStatus> {
        let mut shard = self.lock_shard(self.shard_of(session.tenant));
        if let Some(&reason) = shard.evicted.get(&session) {
            return Err(ServerError::SessionEvicted { session, reason });
        }
        let Some(entry) = shard.sessions.get(&session) else {
            return Err(ServerError::UnknownSession(session));
        };
        if let Some(ttl) = self.config.session_ttl {
            if shard.clock.saturating_sub(entry.last_touch) >= ttl {
                shard.evict(session, EvictionReason::Expired);
                return Err(ServerError::SessionEvicted {
                    session,
                    reason: EvictionReason::Expired,
                });
            }
        }
        let entry = shard.sessions.get(&session).expect("checked above");
        Ok(SessionStatus {
            queries_asked: entry.driver.queries_asked(),
            positives: entry.driver.state().positives(),
            exhausted: entry.driver.is_exhausted(),
        })
    }

    /// Removes a session, returning its final status, and releases its
    /// LRU slot so the shard's cap accounting stays exact. The budget
    /// it charged at open stays spent — SVT's cost is per run, not per
    /// answer — and its receipts remain on the tenant's chain.
    ///
    /// A second close of the same id reports
    /// [`ServerError::UnknownSession`], deterministically: voluntary
    /// closes leave no tombstone (only store-initiated evictions do).
    ///
    /// # Errors
    /// [`ServerError::SessionEvicted`] if the store already reclaimed
    /// it; [`ServerError::UnknownSession`].
    pub fn close_session(&self, session: SessionId) -> Result<SessionStatus> {
        let mut shard = self.lock_shard(self.shard_of(session.tenant));
        if let Some(&reason) = shard.evicted.get(&session) {
            return Err(ServerError::SessionEvicted { session, reason });
        }
        let entry = shard
            .sessions
            .remove(&session)
            .ok_or(ServerError::UnknownSession(session))?;
        shard.lru.remove(&entry.last_touch);
        Ok(SessionStatus {
            queries_asked: entry.driver.queries_asked(),
            positives: entry.driver.state().positives(),
            exhausted: entry.driver.is_exhausted(),
        })
    }

    /// A copy of the tenant's budget standing and full receipt chain.
    ///
    /// # Errors
    /// [`ServerError::UnknownTenant`].
    pub fn ledger_view(&self, tenant: TenantId) -> Result<LedgerView> {
        let shard = self.lock_shard(self.shard_of(tenant));
        let ledger = shard
            .ledgers
            .get(&tenant)
            .ok_or(ServerError::UnknownTenant(tenant))?;
        Ok(LedgerView {
            tenant,
            total: ledger.total(),
            spent: ledger.spent(),
            remaining: ledger.remaining(),
            receipts: ledger.receipts().to_vec(),
        })
    }

    /// Audits one tenant's receipt chain in place.
    ///
    /// # Errors
    /// [`ServerError::UnknownTenant`]; [`ServerError::Ledger`] with the
    /// distinct chain-failure variant on a corrupt chain.
    pub fn verify_tenant(&self, tenant: TenantId) -> Result<()> {
        let shard = self.lock_shard(self.shard_of(tenant));
        let ledger = shard
            .ledgers
            .get(&tenant)
            .ok_or(ServerError::UnknownTenant(tenant))?;
        Ok(ledger.verify_chain()?)
    }

    /// Audits every tenant's chain on every shard; returns how many
    /// tenants were verified.
    ///
    /// # Errors
    /// The first [`ServerError::Ledger`] encountered.
    pub fn verify_all(&self) -> Result<usize> {
        let mut verified = 0;
        for index in 0..self.shards.len() {
            let shard = self.lock_shard(index);
            for ledger in shard.ledgers.values() {
                ledger.verify_chain()?;
                verified += 1;
            }
        }
        Ok(verified)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_mechanisms::wal::MemSink;
    use dp_mechanisms::SvtBudget;

    fn config(c: usize) -> StandardSvtConfig {
        StandardSvtConfig {
            budget: SvtBudget::halves(0.5).unwrap(),
            sensitivity: 1.0,
            c,
            monotonic: true,
        }
    }

    fn one_shard(server: ServerConfig) -> ServerConfig {
        ServerConfig {
            shards: 1,
            ..server
        }
    }

    #[test]
    fn store_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SessionStore>();
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        let shards = |n| ServerConfig {
            shards: n,
            ..Default::default()
        };
        assert_eq!(SessionStore::new(shards(0)).num_shards(), 1);
        assert_eq!(SessionStore::new(shards(5)).num_shards(), 8);
        assert_eq!(SessionStore::new(shards(16)).num_shards(), 16);
    }

    #[test]
    fn tenants_spread_across_shards() {
        let store = SessionStore::new(ServerConfig {
            shards: 8,
            ..Default::default()
        });
        let mut seen = std::collections::HashSet::new();
        for t in 0..64 {
            seen.insert(store.shard_of(TenantId(t)));
        }
        // Sequential ids must not pile onto one shard.
        assert!(seen.len() >= 4, "only {} shards used", seen.len());
    }

    #[test]
    fn unknown_ids_are_rejected() {
        let store = SessionStore::new(ServerConfig::default());
        let tenant = TenantId(9);
        assert_eq!(
            store.open_session(tenant, config(1), 0).unwrap_err(),
            ServerError::UnknownTenant(tenant)
        );
        assert_eq!(
            store.ledger_view(tenant).unwrap_err(),
            ServerError::UnknownTenant(tenant)
        );
        let ghost = SessionId { tenant, nonce: 0 };
        assert_eq!(
            store.submit(ghost, 0.0, 0.0).unwrap_err(),
            ServerError::UnknownSession(ghost)
        );
    }

    #[test]
    fn duplicate_registration_rejected() {
        let store = SessionStore::new(ServerConfig::default());
        store.register_tenant(TenantId(1), 1.0).unwrap();
        assert_eq!(
            store.register_tenant(TenantId(1), 5.0).unwrap_err(),
            ServerError::TenantAlreadyRegistered(TenantId(1))
        );
    }

    #[test]
    fn open_session_charges_and_receipts() {
        let store = SessionStore::new(ServerConfig::default());
        let tenant = TenantId(2);
        store.register_tenant(tenant, 1.0).unwrap();
        let s1 = store.open_session(tenant, config(2), 7).unwrap();
        let view = store.ledger_view(tenant).unwrap();
        assert_eq!(view.receipts.len(), 1);
        assert_eq!(view.receipts[0].session, s1.nonce);
        assert!((view.spent - 0.5).abs() < 1e-12);
        // Second session fits exactly; third does not.
        store.open_session(tenant, config(2), 8).unwrap();
        let err = store.open_session(tenant, config(2), 9).unwrap_err();
        assert!(matches!(err, ServerError::Ledger(_)));
        // The failed open leaves no receipt and no session.
        let view = store.ledger_view(tenant).unwrap();
        assert_eq!(view.receipts.len(), 2);
        assert!(view.remaining < 1e-9);
        store.verify_tenant(tenant).unwrap();
    }

    #[test]
    fn invalid_config_charges_nothing() {
        let store = SessionStore::new(ServerConfig::default());
        let tenant = TenantId(3);
        store.register_tenant(tenant, 1.0).unwrap();
        let mut bad = config(1);
        bad.sensitivity = -1.0;
        assert!(matches!(
            store.open_session(tenant, bad, 0).unwrap_err(),
            ServerError::Svt(_)
        ));
        assert!(store.ledger_view(tenant).unwrap().receipts.is_empty());
    }

    #[test]
    fn close_session_reports_final_state_and_frees_the_slot() {
        let store = SessionStore::new(ServerConfig::default());
        let tenant = TenantId(4);
        store.register_tenant(tenant, 1.0).unwrap();
        let session = store.open_session(tenant, config(2), 11).unwrap();
        store.submit(session, 1e9, 0.0).unwrap();
        let status = store.close_session(session).unwrap();
        assert_eq!(status.queries_asked, 1);
        assert_eq!(status.positives, 1);
        assert!(!status.exhausted);
        assert_eq!(
            store.submit(session, 0.0, 0.0).unwrap_err(),
            ServerError::UnknownSession(session)
        );
        // The spend survives the close.
        assert!((store.ledger_view(tenant).unwrap().spent - 0.5).abs() < 1e-12);
    }

    #[test]
    fn double_close_is_unknown_session_deterministically() {
        let store = SessionStore::new(ServerConfig::default());
        let tenant = TenantId(21);
        store.register_tenant(tenant, 1.0).unwrap();
        let session = store.open_session(tenant, config(1), 3).unwrap();
        store.close_session(session).unwrap();
        for _ in 0..3 {
            assert_eq!(
                store.close_session(session).unwrap_err(),
                ServerError::UnknownSession(session)
            );
        }
    }

    #[test]
    fn batch_mixes_errors_and_answers_in_input_order() {
        let store = SessionStore::new(ServerConfig {
            shards: 2,
            ..Default::default()
        });
        let tenant = TenantId(5);
        store.register_tenant(tenant, 1.0).unwrap();
        let session = store.open_session(tenant, config(10), 13).unwrap();
        let ghost = SessionId { tenant, nonce: 999 };
        let batch = vec![
            BatchQuery {
                session,
                query_answer: -1e9,
                threshold: 0.0,
            },
            BatchQuery {
                session: ghost,
                query_answer: 0.0,
                threshold: 0.0,
            },
            BatchQuery {
                session,
                query_answer: f64::NAN,
                threshold: 0.0,
            },
            BatchQuery {
                session,
                query_answer: 1e9,
                threshold: 0.0,
            },
        ];
        let results = store.submit_batch(&batch);
        assert_eq!(results.len(), 4);
        assert_eq!(results[0].as_ref().unwrap(), &SvtAnswer::Below);
        assert_eq!(
            results[1].as_ref().unwrap_err(),
            &ServerError::UnknownSession(ghost)
        );
        assert!(matches!(results[2], Err(ServerError::Svt(_))));
        assert_eq!(results[3].as_ref().unwrap(), &SvtAnswer::Above);
        // Only the two valid queries were counted.
        assert_eq!(store.session_status(session).unwrap().queries_asked, 2);
    }

    // ----- lifecycle: TTL + LRU cap -------------------------------------

    #[test]
    fn idle_session_expires_and_reports_eviction() {
        let store = SessionStore::new(one_shard(ServerConfig {
            session_ttl: Some(3),
            ..Default::default()
        }));
        let tenant = TenantId(30);
        store.register_tenant(tenant, 10.0).unwrap();
        let idle = store.open_session(tenant, config(1), 1).unwrap();
        let busy = store.open_session(tenant, config(9), 2).unwrap();
        // Three ops on the shard without touching `idle` push it past
        // the TTL of 3 ticks.
        for _ in 0..3 {
            store.submit(busy, -1e9, 0.0).unwrap();
        }
        let err = store.submit(idle, 0.0, 0.0).unwrap_err();
        assert_eq!(
            err,
            ServerError::SessionEvicted {
                session: idle,
                reason: EvictionReason::Expired
            }
        );
        assert!(!err.is_retryable());
        // The tombstone persists: same answer again, and for status.
        assert!(matches!(
            store.session_status(idle).unwrap_err(),
            ServerError::SessionEvicted { .. }
        ));
        // The busy session is untouched.
        store.submit(busy, -1e9, 0.0).unwrap();
    }

    #[test]
    fn open_sweeps_expired_sessions_lazily() {
        let store = SessionStore::new(one_shard(ServerConfig {
            session_ttl: Some(2),
            ..Default::default()
        }));
        let tenant = TenantId(31);
        store.register_tenant(tenant, 10.0).unwrap();
        let old = store.open_session(tenant, config(1), 1).unwrap();
        // Two more opens tick the clock past old's TTL and sweep it.
        store.open_session(tenant, config(1), 2).unwrap();
        store.open_session(tenant, config(1), 3).unwrap();
        assert!(matches!(
            store.session_status(old).unwrap_err(),
            ServerError::SessionEvicted {
                reason: EvictionReason::Expired,
                ..
            }
        ));
    }

    #[test]
    fn session_cap_reclaims_least_recently_used() {
        let store = SessionStore::new(one_shard(ServerConfig {
            session_cap: Some(2),
            ..Default::default()
        }));
        let tenant = TenantId(32);
        store.register_tenant(tenant, 100.0).unwrap();
        let a = store.open_session(tenant, config(9), 1).unwrap();
        let b = store.open_session(tenant, config(9), 2).unwrap();
        // Touch `a` so `b` is the LRU victim.
        store.submit(a, -1e9, 0.0).unwrap();
        let c = store.open_session(tenant, config(9), 3).unwrap();
        assert_eq!(
            store.submit(b, 0.0, 0.0).unwrap_err(),
            ServerError::SessionEvicted {
                session: b,
                reason: EvictionReason::Capacity
            }
        );
        store.submit(a, -1e9, 0.0).unwrap();
        store.submit(c, -1e9, 0.0).unwrap();
    }

    #[test]
    fn closing_releases_the_lru_slot() {
        let store = SessionStore::new(one_shard(ServerConfig {
            session_cap: Some(2),
            ..Default::default()
        }));
        let tenant = TenantId(33);
        store.register_tenant(tenant, 100.0).unwrap();
        let a = store.open_session(tenant, config(9), 1).unwrap();
        let b = store.open_session(tenant, config(9), 2).unwrap();
        store.close_session(a).unwrap();
        // The freed slot means this open evicts nothing.
        let c = store.open_session(tenant, config(9), 3).unwrap();
        store.submit(b, -1e9, 0.0).unwrap();
        store.submit(c, -1e9, 0.0).unwrap();
        // And the closed id stays UnknownSession, not Evicted.
        assert_eq!(
            store.submit(a, 0.0, 0.0).unwrap_err(),
            ServerError::UnknownSession(a)
        );
    }

    // ----- admission: rate limiting + shedding --------------------------

    #[test]
    fn token_bucket_limits_a_tenant_deterministically() {
        let store = SessionStore::new(one_shard(ServerConfig {
            rate_limit: Some(RateLimit {
                rate_per_tick: 0.0,
                burst: 5.0,
            }),
            ..Default::default()
        }));
        let tenant = TenantId(40);
        store.register_tenant(tenant, 100.0).unwrap();
        let session = store.open_session(tenant, config(9), 1).unwrap();
        // The open consumed one token; exactly four submits remain.
        let mut admitted = 0;
        let mut shed = 0;
        for _ in 0..30 {
            match store.submit(session, -1e9, 0.0) {
                Ok(_) => admitted += 1,
                Err(e) => {
                    assert!(e.is_retryable(), "{e}");
                    assert_eq!(
                        e,
                        ServerError::Overloaded(OverloadCause::TenantRateLimited(tenant))
                    );
                    shed += 1;
                }
            }
        }
        assert_eq!(admitted, 4);
        assert_eq!(shed, 26);
    }

    #[test]
    fn token_bucket_refills_on_the_logical_clock() {
        let store = SessionStore::new(one_shard(ServerConfig {
            rate_limit: Some(RateLimit {
                rate_per_tick: 0.25,
                burst: 1.0,
            }),
            ..Default::default()
        }));
        let quiet = TenantId(41);
        let noisy = TenantId(42);
        store.register_tenant(quiet, 100.0).unwrap();
        store.register_tenant(noisy, 100.0).unwrap();
        let qs = store.open_session(quiet, config(9), 1).unwrap();
        let ns = store.open_session(noisy, config(9), 2).unwrap();
        // quiet's bucket is empty now; each loop advances the shard
        // clock two ticks (half a token at 0.25/tick), so alternating
        // traffic admits quiet every second attempt.
        let mut quiet_ok = 0;
        for _ in 0..8 {
            let _ = store.submit(ns, -1e9, 0.0);
            if store.submit(qs, -1e9, 0.0).is_ok() {
                quiet_ok += 1;
            }
        }
        assert!(
            (3..=5).contains(&quiet_ok),
            "expected ~every-other admit, got {quiet_ok}/8"
        );
    }

    #[test]
    fn saturated_shard_sheds_with_a_retryable_error() {
        // threshold 0 sheds everything: the gate trips before the lock.
        let store = SessionStore::new(one_shard(ServerConfig {
            shed_threshold: Some(0),
            ..Default::default()
        }));
        let tenant = TenantId(43);
        store.register_tenant(tenant, 100.0).unwrap();
        let err = store.open_session(tenant, config(1), 1).unwrap_err();
        assert_eq!(
            err,
            ServerError::Overloaded(OverloadCause::ShardSaturated { shard: 0 })
        );
        assert!(err.is_retryable());
        let ghost = SessionId { tenant, nonce: 0 };
        assert!(store.submit(ghost, 0.0, 0.0).unwrap_err().is_retryable());
        let shed_batch = store.submit_batch(&[BatchQuery {
            session: ghost,
            query_answer: 0.0,
            threshold: 0.0,
        }]);
        assert!(shed_batch[0].as_ref().unwrap_err().is_retryable());
        // Registration and audits are not load-bearing: still served.
        store.verify_all().unwrap();
    }

    #[test]
    fn shed_gate_releases_its_slot_after_every_operation() {
        let store = SessionStore::new(one_shard(ServerConfig {
            shed_threshold: Some(1),
            ..Default::default()
        }));
        let tenant = TenantId(44);
        store.register_tenant(tenant, 100.0).unwrap();
        let session = store.open_session(tenant, config(9), 1).unwrap();
        // Sequential ops each hold the single slot and release it; none
        // shed — including ops that end in an error.
        for _ in 0..50 {
            store.submit(session, -1e9, 0.0).unwrap();
        }
        let ghost = SessionId { tenant, nonce: 77 };
        for _ in 0..5 {
            assert_eq!(
                store.submit(ghost, 0.0, 0.0).unwrap_err(),
                ServerError::UnknownSession(ghost)
            );
        }
        store.submit(session, -1e9, 0.0).unwrap();
    }

    // ----- durability: WAL write-through + recovery ---------------------

    #[test]
    fn durable_store_round_trips_through_recovery() {
        let server = one_shard(ServerConfig::default());
        let sink = MemSink::new();
        let store =
            SessionStore::with_wal_sinks(server, vec![Box::new(sink.clone())], FsyncPolicy::Always);
        let t1 = TenantId(50);
        let t2 = TenantId(51);
        store.register_tenant(t1, 4.0).unwrap();
        store.register_tenant(t2, 2.0).unwrap();
        let s = store.open_session(t1, config(9), 1).unwrap();
        store.open_session(t1, config(9), 2).unwrap();
        store.open_session(t2, config(9), 3).unwrap();
        store.submit(s, -1e9, 0.0).unwrap();
        let spent_t1 = store.ledger_view(t1).unwrap().spent;
        let spent_t2 = store.ledger_view(t2).unwrap().spent;

        let (recovered, report) = SessionStore::recover_with_sinks(
            server,
            &[sink.bytes()],
            vec![Box::new(MemSink::new())],
            FsyncPolicy::Always,
        )
        .unwrap();
        assert_eq!(report.tenants, 2);
        assert_eq!(report.records, 5); // 2 registrations + 3 charges
        assert_eq!(report.torn_tail_bytes, 0);
        assert_eq!(recovered.verify_all().unwrap(), 2);
        assert_eq!(
            recovered.ledger_view(t1).unwrap().spent.to_bits(),
            spent_t1.to_bits()
        );
        assert_eq!(
            recovered.ledger_view(t2).unwrap().spent.to_bits(),
            spent_t2.to_bits()
        );
        // Sessions are memory-only: gone after recovery.
        assert_eq!(
            recovered.submit(s, 0.0, 0.0).unwrap_err(),
            ServerError::UnknownSession(s)
        );
        // But the store keeps serving: nonces resume past the log.
        let s2 = recovered.open_session(t1, config(9), 9).unwrap();
        assert!(s2.nonce > s.nonce);
        recovered.verify_all().unwrap();
    }

    #[test]
    fn recovered_nonces_never_collide_with_logged_sessions() {
        let server = one_shard(ServerConfig::default());
        let sink = MemSink::new();
        let store =
            SessionStore::with_wal_sinks(server, vec![Box::new(sink.clone())], FsyncPolicy::Always);
        let tenant = TenantId(52);
        store.register_tenant(tenant, 100.0).unwrap();
        let mut last = 0;
        for seed in 0..5 {
            last = store.open_session(tenant, config(1), seed).unwrap().nonce;
        }
        let (recovered, _) = SessionStore::recover_with_sinks(
            server,
            &[sink.bytes()],
            vec![Box::new(MemSink::new())],
            FsyncPolicy::Always,
        )
        .unwrap();
        let next = recovered.open_session(tenant, config(1), 9).unwrap();
        assert_eq!(next.nonce, last + 1);
    }

    #[test]
    fn recovery_rejects_a_wrong_shard_count() {
        let sink = MemSink::new();
        let store = SessionStore::with_wal_sinks(
            one_shard(ServerConfig::default()),
            vec![Box::new(sink.clone())],
            FsyncPolicy::Always,
        );
        // Tenant 3 hashes to shard 1 of a 2-shard store, so its record
        // in shard 0's log betrays the count mismatch.
        let tenant = (0..64)
            .map(TenantId)
            .find(|t| (mix64(t.0) & 1) == 1)
            .expect("some tenant hashes to shard 1");
        store.register_tenant(tenant, 1.0).unwrap();
        let two_shards = ServerConfig {
            shards: 2,
            ..Default::default()
        };
        let err = SessionStore::recover_with_sinks(
            two_shards,
            &[sink.bytes(), Vec::new()],
            vec![Box::new(MemSink::new()), Box::new(MemSink::new())],
            FsyncPolicy::Always,
        )
        .unwrap_err();
        assert!(matches!(err, ServerError::Durability(_)), "{err}");
    }

    #[test]
    fn wal_failure_refuses_the_charge_and_poisons_the_store() {
        use dp_mechanisms::{FaultMode, FaultPlan, FaultySink};
        let server = one_shard(ServerConfig::default());
        let mem = MemSink::new();
        // Third append (the second session open) fails outright.
        let faulty = FaultySink::new(
            mem.clone(),
            FaultPlan {
                fail_op: 2,
                mode: FaultMode::WriteError,
            },
        );
        let store =
            SessionStore::with_wal_sinks(server, vec![Box::new(faulty)], FsyncPolicy::Always);
        let tenant = TenantId(53);
        store.register_tenant(tenant, 100.0).unwrap();
        let s1 = store.open_session(tenant, config(9), 1).unwrap();
        let err = store.open_session(tenant, config(9), 2).unwrap_err();
        assert!(matches!(err, ServerError::Durability(_)), "{err}");
        assert!(!err.is_retryable());
        assert!(store.durability_poisoned());
        // The refused charge never reached the in-memory ledger.
        assert!((store.ledger_view(tenant).unwrap().spent - 0.5).abs() < 1e-12);
        // Budget-bearing ops now fail fast; reads and queries survive.
        assert!(matches!(
            store.open_session(tenant, config(9), 3).unwrap_err(),
            ServerError::Durability(WalError::Poisoned)
        ));
        assert!(matches!(
            store.register_tenant(TenantId(54), 1.0).unwrap_err(),
            ServerError::Durability(WalError::Poisoned)
        ));
        store.submit(s1, -1e9, 0.0).unwrap();
        store.verify_all().unwrap();
        // And what *was* acknowledged is all on disk and replayable.
        let (recovered, _) = SessionStore::recover_with_sinks(
            server,
            &[mem.bytes()],
            vec![Box::new(MemSink::new())],
            FsyncPolicy::Always,
        )
        .unwrap();
        assert_eq!(
            recovered.ledger_view(tenant).unwrap().spent.to_bits(),
            store.ledger_view(tenant).unwrap().spent.to_bits()
        );
    }
}
