//! Statistical-soundness integration tests for the auditor: the
//! Clopper–Pearson machinery must actually deliver its coverage, the
//! grid auditor must neither convict honest mechanisms nor acquit
//! broken ones, and the certified bounds must behave monotonically.

use dp_auditor::sweep::{answers_key, audit_output_grid};
use dp_auditor::{audit_event, BernoulliEstimate};
use dp_mechanisms::{DpRng, Laplace};
use proptest::prelude::*;

#[test]
fn clopper_pearson_intervals_achieve_nominal_coverage() {
    // Simulate 400 binomial experiments at known p; the 95% interval
    // must contain p in at least ~93% of them (two-sided binomial noise
    // on the coverage estimate itself allows a little slack).
    let mut rng = DpRng::seed_from_u64(4001);
    for &p in &[0.02f64, 0.3, 0.77] {
        let mut covered = 0u32;
        let reps = 400;
        for _ in 0..reps {
            let n = 500u64;
            let k = (0..n).filter(|_| rng.bernoulli(p)).count() as u64;
            let est = BernoulliEstimate::from_counts(k, n, 0.95);
            if est.lower <= p && p <= est.upper {
                covered += 1;
            }
        }
        let rate = f64::from(covered) / f64::from(reps);
        assert!(rate >= 0.93, "p={p}: coverage {rate}");
    }
}

#[test]
fn audit_never_convicts_the_laplace_mechanism_at_its_true_epsilon() {
    // The Laplace mechanism released through a coarse bin grid is ε-DP;
    // no event may certify a loss above ε. (Binning only coarsens
    // events, so the grid bound must stay below ε up to CP noise.)
    let eps = 1.0;
    let lap = Laplace::new(1.0 / eps).unwrap();
    let release = |true_value: f64| {
        move |r: &mut DpRng| -> i64 { (true_value + lap.sample(r)).floor() as i64 }
    };
    let mut rng = DpRng::seed_from_u64(4011);
    let grid = audit_output_grid(release(0.0), release(1.0), 120_000, 0.95, &mut rng);
    assert!(
        !grid.refutes_epsilon_dp(eps),
        "convicted an honest mechanism: bound {}",
        grid.epsilon_lower_bound()
    );
    // But the separation between neighbors is real: some loss is
    // certified once enough trials accumulate.
    assert!(grid.epsilon_lower_bound() > 0.3, "no signal at all?");
}

#[test]
fn audit_convicts_an_unnoised_release_immediately() {
    // Releasing the true value with no noise: the output separates D
    // from D′ perfectly and the certified bound grows with trials.
    let mut rng = DpRng::seed_from_u64(4021);
    let small = audit_output_grid(|_| 0u8, |_| 1u8, 1_000, 0.95, &mut rng);
    let large = audit_output_grid(|_| 0u8, |_| 1u8, 100_000, 0.95, &mut rng);
    assert!(small.refutes_epsilon_dp(4.0));
    assert!(large.epsilon_lower_bound() > small.epsilon_lower_bound() + 3.0);
}

#[test]
fn certified_bound_grows_with_trial_count_on_separated_events() {
    let run = |trials: u64, rng: &mut DpRng| {
        audit_event(
            |r| r.bernoulli(0.5),
            |r| r.bernoulli(0.05),
            trials,
            0.95,
            rng,
        )
        .epsilon_lower_bound()
    };
    let mut rng = DpRng::seed_from_u64(4031);
    let b1 = run(500, &mut rng);
    let b2 = run(5_000, &mut rng);
    let b3 = run(50_000, &mut rng);
    assert!(b1 <= b2 + 0.15 && b2 <= b3 + 0.15, "{b1} {b2} {b3}");
    // The true loss is ln(10) ≈ 2.30; at 50k trials we should certify
    // most of it and never exceed it.
    assert!(b3 > 2.0 && b3 < 10f64.ln() + 0.05, "{b3}");
}

#[test]
fn counterexample_ratios_scale_with_epsilon_as_theory_predicts() {
    use dp_auditor::counterexamples as cx;
    // Theorem 6: ratio = e^{(m−1)ε/2}, so the measured log-ratio must
    // grow with ε. At small ε both events are frequent enough for a
    // tight check; at larger ε the D′ event gets rare and only the
    // ordering and the refutation are statistically stable.
    let m = 4;
    let mut rng = DpRng::seed_from_u64(4041);
    let lo = cx::audit_alg3_theorem6(0.5, m, 0.25, 200_000, 0.95, &mut rng);
    let hi = cx::audit_alg3_theorem6(1.5, m, 0.25, 200_000, 0.95, &mut rng);
    let lo_point = lo.point_epsilon();
    let hi_point = hi.point_epsilon();
    assert!(
        hi_point > lo_point + 0.5,
        "ratio should grow with ε: {lo_point} vs {hi_point}"
    );
    // The ±0.25 output window biases the measured ratio away from the
    // exact-value theorem by a bounded factor; a ×2 bracket is what the
    // window analysis supports (same bracket as the unit tests).
    let lo_theory = cx::alg3_theorem6_theoretical_ratio(0.5, m).ln(); // 0.75
    assert!(
        (lo_point - lo_theory).abs() < 2f64.ln(),
        "{lo_point} vs {lo_theory}"
    );
    // The ε = 1.5 witness must refute the nominal 1.5-DP claim.
    assert!(
        hi.refutes_epsilon_dp(1.5),
        "bound {}",
        hi.epsilon_lower_bound()
    );
}

#[test]
fn grid_and_single_event_audits_agree_on_the_same_witness() {
    // Auditing the Theorem 3 witness through the grid must certify at
    // least as much as the hand-picked event (the grid sees the same
    // event plus the mirror one).
    use dp_auditor::counterexamples as cx;
    use svt_core::alg::{run_svt, Alg5};
    use svt_core::Thresholds;

    let eps = 1.0;
    let trials = 50_000;
    let mut rng = DpRng::seed_from_u64(4051);
    let single = cx::audit_alg5_theorem3(eps, trials, 0.95, &mut rng);

    let run5 = |queries: [f64; 2]| {
        move |r: &mut DpRng| -> String {
            let mut alg = Alg5::new(eps, 1.0, r).unwrap();
            let run = run_svt(&mut alg, &queries, &Thresholds::Constant(0.0), r).unwrap();
            answers_key(&run.answers, 2)
        }
    };
    let grid = audit_output_grid(run5([0.0, 1.0]), run5([1.0, 0.0]), trials, 0.95, &mut rng);
    assert!(grid.refutes_epsilon_dp(eps));
    assert!(single.refutes_epsilon_dp(eps));
    // Bonferroni makes the grid's per-event intervals slightly wider,
    // so allow it to certify a bit less than the targeted audit.
    assert!(
        grid.epsilon_lower_bound() > single.epsilon_lower_bound() * 0.6,
        "grid {} vs single {}",
        grid.epsilon_lower_bound(),
        single.epsilon_lower_bound()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn estimates_are_internally_consistent(
        successes in 0u64..1000,
        extra in 0u64..1000,
        confidence in 0.5f64..0.999,
    ) {
        let trials = successes + extra;
        prop_assume!(trials > 0);
        let est = BernoulliEstimate::from_counts(successes, trials, confidence);
        prop_assert!(est.lower >= 0.0);
        prop_assert!(est.upper <= 1.0);
        prop_assert!(est.lower <= est.point() + 1e-12);
        prop_assert!(est.point() <= est.upper + 1e-12);
        // Zero successes ⇒ lower bound exactly 0; all successes ⇒
        // upper bound exactly 1.
        if successes == 0 {
            prop_assert_eq!(est.lower, 0.0);
        }
        if successes == trials {
            prop_assert_eq!(est.upper, 1.0);
        }
    }

    #[test]
    fn wider_confidence_gives_wider_intervals(
        successes in 1u64..99,
    ) {
        let narrow = BernoulliEstimate::from_counts(successes, 100, 0.9);
        let wide = BernoulliEstimate::from_counts(successes, 100, 0.99);
        prop_assert!(wide.lower <= narrow.lower + 1e-12);
        prop_assert!(wide.upper >= narrow.upper - 1e-12);
    }

    #[test]
    fn more_trials_shrink_intervals(
        p_milli in 1u64..999,
    ) {
        // Same empirical rate at 10× the sample size ⇒ narrower CI.
        let small = BernoulliEstimate::from_counts(p_milli, 1_000, 0.95);
        let large = BernoulliEstimate::from_counts(p_milli * 10, 10_000, 0.95);
        prop_assert!(large.width() < small.width());
    }
}
