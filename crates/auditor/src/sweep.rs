//! Output-grid auditing: bound the privacy loss over *every* observed
//! output at once.
//!
//! The witnesses in [`crate::counterexamples`] audit one hand-picked
//! output event. That is the right tool when the paper supplies the
//! event, but when *exploring* a mechanism one wants the empirical
//! worst case over the whole output space. [`audit_output_grid`] runs
//! the mechanism `trials` times on each neighbor, tallies complete
//! output vectors, and produces one [`RatioAudit`] per distinct output
//! — with the confidence level Bonferroni-corrected across all
//! intervals, so that the *maximum* certified bound is itself a valid
//! lower confidence bound on the mechanism's privacy loss.
//!
//! The loss is audited in both directions (`Pr_D/Pr_D′` and
//! `Pr_D′/Pr_D`): `ε`-DP bounds both ratios, and for asymmetric
//! witnesses one direction is often far more incriminating.

use crate::auditor::RatioAudit;
use crate::estimate::BernoulliEstimate;
use dp_mechanisms::DpRng;
use std::collections::HashMap;
use std::hash::Hash;

/// The audit of one distinct output value in a grid sweep.
#[derive(Debug, Clone)]
pub struct OutputAudit<K> {
    /// The output value (e.g. the ⊥/⊤ answer vector).
    pub output: K,
    /// Paired estimates, oriented so `on_d` is the side where the
    /// output was *more* frequent.
    pub audit: RatioAudit,
    /// `true` if the incriminating direction is `Pr_D′/Pr_D` (i.e. the
    /// pair was swapped relative to the caller's arguments).
    pub swapped: bool,
}

/// Result of [`audit_output_grid`]: one audit per distinct output,
/// sorted by decreasing certified loss.
#[derive(Debug, Clone)]
pub struct GridAudit<K> {
    /// Per-output audits, worst first.
    pub outputs: Vec<OutputAudit<K>>,
    /// Trials run on each neighbor.
    pub trials: u64,
    /// The per-interval confidence after Bonferroni correction.
    pub per_interval_confidence: f64,
    /// The caller-requested simultaneous confidence.
    pub simultaneous_confidence: f64,
}

impl<K> GridAudit<K> {
    /// The worst certified output, if any output was ever observed.
    pub fn worst(&self) -> Option<&OutputAudit<K>> {
        self.outputs.first()
    }

    /// The overall certified lower bound on the privacy loss (0 when
    /// nothing can be certified). Valid at
    /// [`simultaneous_confidence`](Self::simultaneous_confidence).
    pub fn epsilon_lower_bound(&self) -> f64 {
        self.worst()
            .map(|o| o.audit.epsilon_lower_bound())
            .unwrap_or(0.0)
    }

    /// Whether the sweep refutes an `ε`-DP claim.
    pub fn refutes_epsilon_dp(&self, epsilon: f64) -> bool {
        self.epsilon_lower_bound() > epsilon
    }
}

/// Runs `mechanism_on_d` and `mechanism_on_d_prime` `trials` times
/// each, tallies their discrete outputs, and audits every output seen
/// on either side.
///
/// Each closure must perform one fresh, independent run of the
/// mechanism and return its complete (discretized) output. Numeric
/// outputs must be binned by the caller — the grid is only sound for
/// genuinely discrete output spaces.
///
/// The Bonferroni correction divides the error budget `1 − confidence`
/// across the `2·(number of distinct outputs)` intervals, so the
/// reported worst case holds simultaneously.
///
/// ```
/// use dp_auditor::sweep::audit_output_grid;
/// use dp_mechanisms::DpRng;
///
/// // A "mechanism" that leaks its input outright is convicted without
/// // anyone having to guess which output separates the neighbors.
/// let mut rng = DpRng::seed_from_u64(5);
/// let grid = audit_output_grid(|_| 0u8, |_| 1u8, 10_000, 0.95, &mut rng);
/// assert!(grid.refutes_epsilon_dp(3.0));
/// assert_eq!(grid.worst().unwrap().output, 0); // or 1 — both separate
/// ```
pub fn audit_output_grid<K, F, G>(
    mut mechanism_on_d: F,
    mut mechanism_on_d_prime: G,
    trials: u64,
    confidence: f64,
    rng: &mut DpRng,
) -> GridAudit<K>
where
    K: Eq + Hash + Clone,
    F: FnMut(&mut DpRng) -> K,
    G: FnMut(&mut DpRng) -> K,
{
    let mut counts_d: HashMap<K, u64> = HashMap::new();
    let mut counts_d_prime: HashMap<K, u64> = HashMap::new();
    for _ in 0..trials {
        *counts_d.entry(mechanism_on_d(rng)).or_insert(0) += 1;
    }
    for _ in 0..trials {
        *counts_d_prime.entry(mechanism_on_d_prime(rng)).or_insert(0) += 1;
    }

    let mut keys: Vec<K> = counts_d.keys().cloned().collect();
    for k in counts_d_prime.keys() {
        if !counts_d.contains_key(k) {
            keys.push(k.clone());
        }
    }

    let m = keys.len().max(1) as f64;
    let per_interval_confidence = 1.0 - (1.0 - confidence) / (2.0 * m);

    let mut outputs: Vec<OutputAudit<K>> = keys
        .into_iter()
        .map(|key| {
            let k_d = counts_d.get(&key).copied().unwrap_or(0);
            let k_dp = counts_d_prime.get(&key).copied().unwrap_or(0);
            let est_d = BernoulliEstimate::from_counts(k_d, trials, per_interval_confidence);
            let est_dp = BernoulliEstimate::from_counts(k_dp, trials, per_interval_confidence);
            // Audit the more incriminating direction.
            let forward = RatioAudit {
                on_d: est_d,
                on_d_prime: est_dp,
            };
            let backward = RatioAudit {
                on_d: est_dp,
                on_d_prime: est_d,
            };
            if forward.epsilon_lower_bound() >= backward.epsilon_lower_bound() {
                OutputAudit {
                    output: key,
                    audit: forward,
                    swapped: false,
                }
            } else {
                OutputAudit {
                    output: key,
                    audit: backward,
                    swapped: true,
                }
            }
        })
        .collect();

    outputs.sort_by(|a, b| {
        b.audit
            .epsilon_lower_bound()
            .partial_cmp(&a.audit.epsilon_lower_bound())
            .unwrap_or(std::cmp::Ordering::Equal)
    });

    GridAudit {
        outputs,
        trials,
        per_interval_confidence,
        simultaneous_confidence: confidence,
    }
}

/// Renders an SVT answer vector as a compact key for grid audits:
/// `'T'` for ⊤, `'F'` for ⊥, `'N'` for numeric outputs (binned
/// coarsely as a single symbol — use a custom key for finer numeric
/// events), `'.'` for "not answered" padding when runs halt early.
pub fn answers_key(answers: &[svt_core::SvtAnswer], len: usize) -> String {
    let mut s = String::with_capacity(len);
    for a in answers.iter().take(len) {
        s.push(match a {
            svt_core::SvtAnswer::Above => 'T',
            svt_core::SvtAnswer::Below => 'F',
            svt_core::SvtAnswer::Numeric(_) => 'N',
        });
    }
    while s.len() < len {
        s.push('.');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use svt_core::alg::{run_svt, Alg1, Alg5};
    use svt_core::Thresholds;

    #[test]
    fn identical_mechanisms_certify_nothing() {
        let mut rng = DpRng::seed_from_u64(701);
        let grid = audit_output_grid(
            |r| r.bernoulli(0.5),
            |r| r.bernoulli(0.5),
            20_000,
            0.95,
            &mut rng,
        );
        assert_eq!(grid.outputs.len(), 2);
        assert!(grid.epsilon_lower_bound() < 0.1);
        assert!(!grid.refutes_epsilon_dp(0.2));
    }

    #[test]
    fn grid_finds_the_separating_output_automatically() {
        // A three-outcome mechanism where only outcome 2 separates.
        let sample = |p2: f64| {
            move |r: &mut DpRng| -> u8 {
                let u = r.uniform();
                if u < p2 {
                    2
                } else if u < 0.5 {
                    1
                } else {
                    0
                }
            }
        };
        let mut rng = DpRng::seed_from_u64(709);
        let grid = audit_output_grid(sample(0.3), sample(0.05), 100_000, 0.95, &mut rng);
        let worst = grid.worst().unwrap();
        assert_eq!(worst.output, 2, "should single out the separating outcome");
        // True loss ln(0.3/0.05) ≈ 1.79.
        assert!(grid.epsilon_lower_bound() > 1.4);
        assert!(grid.refutes_epsilon_dp(1.0));
    }

    #[test]
    fn both_directions_are_audited() {
        // Separation only in the D′-heavier direction.
        let mut rng = DpRng::seed_from_u64(719);
        let grid = audit_output_grid(
            |r| r.bernoulli(0.02),
            |r| r.bernoulli(0.4),
            50_000,
            0.95,
            &mut rng,
        );
        let worst = grid.worst().unwrap();
        assert!(worst.swapped, "incriminating direction is Pr_D′/Pr_D");
        assert!(grid.epsilon_lower_bound() > 2.0);
    }

    #[test]
    fn bonferroni_correction_tightens_with_output_count() {
        let mut rng = DpRng::seed_from_u64(727);
        let few = audit_output_grid(|_| 0u8, |_| 0u8, 100, 0.95, &mut rng);
        let many = audit_output_grid(
            |r| (r.uniform() * 16.0) as u8,
            |r| (r.uniform() * 16.0) as u8,
            1_000,
            0.95,
            &mut rng,
        );
        assert!(many.per_interval_confidence > few.per_interval_confidence);
        assert!(many.per_interval_confidence < 1.0);
    }

    #[test]
    fn grid_convicts_alg5_and_acquits_alg1() {
        // The Theorem 3 witness pair, but audited blind: the grid must
        // rediscover the ⟨⊥,⊤⟩ event for Alg. 5 while certifying
        // nothing above ε for Alg. 1 on the same inputs.
        let eps = 1.0;
        let run5 = |queries: [f64; 2]| {
            move |r: &mut DpRng| -> String {
                let mut alg = Alg5::new(eps, 1.0, r).unwrap();
                let run = run_svt(&mut alg, &queries, &Thresholds::Constant(0.0), r).unwrap();
                answers_key(&run.answers, 2)
            }
        };
        let mut rng = DpRng::seed_from_u64(733);
        let grid5 = audit_output_grid(run5([0.0, 1.0]), run5([1.0, 0.0]), 60_000, 0.95, &mut rng);
        assert!(grid5.refutes_epsilon_dp(eps), "Alg. 5 must be convicted");
        // The witness is symmetric: ⟨⊥,⊤⟩ is impossible on D′ and
        // ⟨⊤,⊥⟩ is impossible on D. Either conviction is correct, as
        // long as the direction matches.
        let worst = grid5.worst().unwrap();
        match worst.output.as_str() {
            "FT" => assert!(!worst.swapped),
            "TF" => assert!(worst.swapped),
            other => panic!("unexpected worst output {other}"),
        }

        let run1 = |queries: [f64; 2]| {
            move |r: &mut DpRng| -> String {
                let mut alg = Alg1::new(eps, 1.0, 1, r).unwrap();
                let run = run_svt(&mut alg, &queries, &Thresholds::Constant(0.0), r).unwrap();
                answers_key(&run.answers, 2)
            }
        };
        let grid1 = audit_output_grid(run1([0.0, 1.0]), run1([1.0, 0.0]), 60_000, 0.95, &mut rng);
        assert!(
            !grid1.refutes_epsilon_dp(eps),
            "Alg. 1 must not be convicted: bound {}",
            grid1.epsilon_lower_bound()
        );
    }

    #[test]
    fn grid_acquits_the_post2017_variants() {
        // The reference-suite verdicts for the correct formulations:
        // audited blind over their whole output grid on an Alg.5-style
        // neighbor pair, neither SVT-Revisited (⊤-only charging) nor
        // the exponential-noise SVT certifies a loss above its ε claim.
        use svt_core::alg::{ExpNoiseSvt, StandardSvtConfig, SvtRevisited};
        let eps = 1.0;
        let cfg = StandardSvtConfig::from_ratio(eps, 1.0, 1.0, 2, false).unwrap();
        let queries = |flip: bool| {
            if flip {
                [1.0, 0.0, 1.0]
            } else {
                [0.0, 1.0, 0.0]
            }
        };

        let run_rv = |flip: bool| {
            move |r: &mut DpRng| -> String {
                let mut alg = SvtRevisited::new(cfg, r).unwrap();
                let run = run_svt(&mut alg, &queries(flip), &Thresholds::Constant(0.0), r).unwrap();
                answers_key(&run.answers, 3)
            }
        };
        let mut rng = DpRng::seed_from_u64(769);
        let grid_rv = audit_output_grid(run_rv(false), run_rv(true), 60_000, 0.95, &mut rng);
        assert!(grid_rv.worst().is_some(), "no outputs observed");
        assert!(
            !grid_rv.refutes_epsilon_dp(eps),
            "SVT-Revisited wrongly convicted: bound {}",
            grid_rv.epsilon_lower_bound()
        );

        let run_exp = |flip: bool| {
            move |r: &mut DpRng| -> String {
                let mut alg = ExpNoiseSvt::new(cfg, r).unwrap();
                let run = run_svt(&mut alg, &queries(flip), &Thresholds::Constant(0.0), r).unwrap();
                answers_key(&run.answers, 3)
            }
        };
        let grid_exp = audit_output_grid(run_exp(false), run_exp(true), 60_000, 0.95, &mut rng);
        assert!(grid_exp.worst().is_some(), "no outputs observed");
        assert!(
            !grid_exp.refutes_epsilon_dp(eps),
            "exp-noise SVT wrongly convicted: bound {}",
            grid_exp.epsilon_lower_bound()
        );
    }

    #[test]
    fn answers_key_renders_and_pads() {
        use svt_core::SvtAnswer;
        let key = answers_key(
            &[SvtAnswer::Below, SvtAnswer::Above, SvtAnswer::Numeric(3.0)],
            5,
        );
        assert_eq!(key, "FTN..");
        assert_eq!(answers_key(&[], 0), "");
    }

    #[test]
    fn alg1_halting_outputs_are_keyed_distinctly() {
        // With c = 1 a run can halt after the first ⊤; the padded key
        // must distinguish ⟨⊤, unanswered⟩ from ⟨⊤, ⊥⟩.
        let mut rng = DpRng::seed_from_u64(739);
        let mut alg = Alg1::new(1.0, 1.0, 1, &mut rng).unwrap();
        let run = run_svt(&mut alg, &[1e9, 0.0], &Thresholds::Constant(0.0), &mut rng).unwrap();
        assert_eq!(answers_key(&run.answers, 2), "T.");
    }
}
