//! Monte-Carlo event-probability estimation.
//!
//! An "event" is any predicate over a mechanism's output (here: "the
//! output vector equals `a`"). Running the mechanism `n` times and
//! counting hits gives a binomial sample; [`BernoulliEstimate`] wraps
//! the count with an exact Clopper–Pearson interval so downstream ratio
//! bounds are statistically sound rather than anecdotal.

use crate::special::clopper_pearson;
use dp_mechanisms::DpRng;

/// A binomial point estimate with an exact confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BernoulliEstimate {
    /// Number of trials in which the event occurred.
    pub successes: u64,
    /// Total trials.
    pub trials: u64,
    /// Confidence level of the interval (e.g. 0.95).
    pub confidence: f64,
    /// Exact lower confidence bound on the event probability.
    pub lower: f64,
    /// Exact upper confidence bound on the event probability.
    pub upper: f64,
}

impl BernoulliEstimate {
    /// Builds the estimate from raw counts.
    ///
    /// # Panics
    /// Debug-asserts `successes ≤ trials` and a sane confidence level.
    pub fn from_counts(successes: u64, trials: u64, confidence: f64) -> Self {
        let (lower, upper) = clopper_pearson(successes, trials, confidence);
        Self {
            successes,
            trials,
            confidence,
            lower,
            upper,
        }
    }

    /// The maximum-likelihood point estimate `k/n`.
    pub fn point(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.successes as f64 / self.trials as f64
        }
    }

    /// Interval width (a convergence diagnostic).
    pub fn width(&self) -> f64 {
        self.upper - self.lower
    }
}

/// Runs `event` (a full mechanism execution returning whether the target
/// output occurred) `trials` times and estimates its probability.
pub fn estimate_event<F>(
    mut event: F,
    trials: u64,
    confidence: f64,
    rng: &mut DpRng,
) -> BernoulliEstimate
where
    F: FnMut(&mut DpRng) -> bool,
{
    let mut successes = 0u64;
    for _ in 0..trials {
        if event(rng) {
            successes += 1;
        }
    }
    BernoulliEstimate::from_counts(successes, trials, confidence)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_estimate_and_width() {
        let e = BernoulliEstimate::from_counts(25, 100, 0.95);
        assert!((e.point() - 0.25).abs() < 1e-12);
        assert!(e.lower < 0.25 && 0.25 < e.upper);
        assert!(e.width() > 0.0);
        let empty = BernoulliEstimate::from_counts(0, 0, 0.95);
        assert_eq!(empty.point(), 0.0);
    }

    #[test]
    fn estimate_event_recovers_known_probability() {
        let mut rng = DpRng::seed_from_u64(607);
        let est = estimate_event(|r| r.bernoulli(0.37), 50_000, 0.95, &mut rng);
        assert!(est.lower <= 0.37 && 0.37 <= est.upper, "{est:?}");
        assert!((est.point() - 0.37).abs() < 0.01);
    }

    #[test]
    fn impossible_event_yields_zero_with_tight_upper_bound() {
        let mut rng = DpRng::seed_from_u64(613);
        let est = estimate_event(|_| false, 10_000, 0.95, &mut rng);
        assert_eq!(est.successes, 0);
        assert_eq!(est.lower, 0.0);
        // Rule of three-ish: upper ≈ 3.7/n at 95%.
        assert!(est.upper < 5.0e-4, "upper {}", est.upper);
    }

    #[test]
    fn certain_event_yields_one() {
        let mut rng = DpRng::seed_from_u64(617);
        let est = estimate_event(|_| true, 1000, 0.95, &mut rng);
        assert_eq!(est.upper, 1.0);
        assert!(est.lower > 0.99);
    }
}
