//! The paper's non-privacy constructions, packaged as runnable audits.
//!
//! Each function builds the exact `(D, D′, output)` witness from the
//! paper, runs the target algorithm from scratch on both inputs many
//! times, and returns a [`RatioAudit`]. The companions
//! `*_theoretical_*` give the closed-form ratios the appendix derives,
//! which the experiment binary prints next to the measurements:
//!
//! | Witness | Target | Paper result |
//! |---|---|---|
//! | Theorem 3 | Alg. 5 | ratio = ∞ (event impossible on `D′`) |
//! | Theorem 6 (App. 10.1) | Alg. 3 | ratio = `e^{(m−1)ε/2}` → ∞ |
//! | Theorem 7 (App. 10.2) | Alg. 6 | ratio ≥ `e^{mε/2}` → ∞ |
//! | Lemma 1 / §3.3 | Alg. 1 | ratio ≤ `e^{ε/2}` for **all** `t` — the GPTT proof's logic would predict divergence, and is therefore wrong |
//!
//! The post-2017 variants get the same treatment: for each of
//! [`svt_core::alg::SvtRevisited`] and [`svt_core::alg::ExpNoiseSvt`]
//! this module carries a witness against the *natural broken
//! budget-allocation misreading* of the algorithm, mirroring how
//! Algs. 3–6 are refuted above, while the correct formulations survive
//! the identical witness (see the tests, and the acquitting output-grid
//! sweeps in [`crate::sweep`]):
//!
//! | Witness | Target | Result |
//! |---|---|---|
//! | `(⊥^m ⊤)^c` blocks | full-`ε`-per-instance SVT-Revisited | ratio → `e^{cε}` (claim `ε`) |
//! | `⊤^c` | exp-noise SVT without the `c` factor | ratio = `e^{cε/4}` **exactly** (claim `ε`) |

use crate::auditor::{audit_event, RatioAudit};
use dp_mechanisms::{DpRng, Exponential, Laplace};
use svt_core::alg::{Alg1, Alg3, Alg4, Alg5, Alg6, SparseVector};
use svt_core::{Result, SvtAnswer};

/// Drives `alg` over `queries` (threshold 0 everywhere, the witnesses'
/// convention) and reports whether the produced answers match `pattern`.
fn matches_pattern<A: SparseVector>(
    alg: &mut A,
    queries: &[f64],
    pattern: &[Expected],
    rng: &mut DpRng,
) -> bool {
    for (q, expected) in queries.iter().zip(pattern) {
        if alg.is_halted() {
            return false;
        }
        let answer = alg
            .respond(*q, 0.0, rng)
            .expect("witness inputs are finite and within budget");
        if !expected.matches(&answer) {
            return false;
        }
    }
    true
}

/// Expected answer in a witness output pattern.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Expected {
    Below,
    Above,
    /// A numeric answer within `±window` of `center` — the
    /// Monte-Carlo-able surrogate for the appendix's exact-value event
    /// (the ratio is window-independent up to `O(window)`).
    NumericNear {
        center: f64,
        window: f64,
    },
}

impl Expected {
    fn matches(&self, answer: &SvtAnswer) -> bool {
        match (self, answer) {
            (Self::Below, SvtAnswer::Below) => true,
            (Self::Above, SvtAnswer::Above) => true,
            (Self::NumericNear { center, window }, SvtAnswer::Numeric(v)) => {
                (v - center).abs() <= *window
            }
            _ => false,
        }
    }
}

/// Theorem 3 witness against **Algorithm 5**: `T = 0`, `Δ = 1`,
/// `q(D) = ⟨0, 1⟩`, `q(D′) = ⟨1, 0⟩`, output `a = ⟨⊥, ⊤⟩`.
///
/// On `D` the event happens iff `0 < ρ ≤ 1` (positive probability); on
/// `D′` it requires `1 < ρ ≤ 0` — impossible. The measured `ε̂` lower
/// bound therefore grows without bound in the trial count.
pub fn audit_alg5_theorem3(
    epsilon: f64,
    trials: u64,
    confidence: f64,
    rng: &mut DpRng,
) -> RatioAudit {
    let pattern = [Expected::Below, Expected::Above];
    audit_event(
        |r| {
            let mut alg = Alg5::new(epsilon, 1.0, r).expect("valid parameters");
            matches_pattern(&mut alg, &[0.0, 1.0], &pattern, r)
        },
        |r| {
            let mut alg = Alg5::new(epsilon, 1.0, r).expect("valid parameters");
            matches_pattern(&mut alg, &[1.0, 0.0], &pattern, r)
        },
        trials,
        confidence,
        rng,
    )
}

/// The exact probability of the Theorem 3 event on `D`:
/// `P[0 < ρ ≤ 1]` with `ρ ~ Lap(2/ε)`.
pub fn alg5_theorem3_exact_probability(epsilon: f64) -> f64 {
    let scale = 2.0 / epsilon; // Δ/ε₁ with Δ = 1, ε₁ = ε/2
    let f = |x: f64| {
        if x < 0.0 {
            0.5 * (x / scale).exp()
        } else {
            1.0 - 0.5 * (-x / scale).exp()
        }
    };
    f(1.0) - f(0.0)
}

/// Theorem 6 witness against **Algorithm 3** (`c = 1`): `m + 1` queries
/// with `q(D) = 0^m·1`, `q(D′) = 1^m·0`, output `⊥^m` followed by a
/// numeric answer near 0 (within `±window`).
///
/// The appendix shows the exact-ratio `e^{(m−1)ε/2}`; the window version
/// converges to it as `window → 0`.
pub fn audit_alg3_theorem6(
    epsilon: f64,
    m: usize,
    window: f64,
    trials: u64,
    confidence: f64,
    rng: &mut DpRng,
) -> RatioAudit {
    let mut pattern = vec![Expected::Below; m];
    pattern.push(Expected::NumericNear {
        center: 0.0,
        window,
    });
    let mut queries_d = vec![0.0; m];
    queries_d.push(1.0);
    let mut queries_d_prime = vec![1.0; m];
    queries_d_prime.push(0.0);
    audit_event(
        |r| {
            let mut alg = Alg3::new(epsilon, 1.0, 1, r).expect("valid parameters");
            matches_pattern(&mut alg, &queries_d, &pattern, r)
        },
        |r| {
            let mut alg = Alg3::new(epsilon, 1.0, 1, r).expect("valid parameters");
            matches_pattern(&mut alg, &queries_d_prime, &pattern, r)
        },
        trials,
        confidence,
        rng,
    )
}

/// The Theorem 6 closed-form ratio `e^{(m−1)ε/2}`.
pub fn alg3_theorem6_theoretical_ratio(epsilon: f64, m: usize) -> f64 {
    ((m as f64 - 1.0) * epsilon / 2.0).exp()
}

/// Theorem 7 witness against **Algorithm 6**: `2m` queries with
/// `q(D) = 0^{2m}`, `q(D′) = 1^m·(−1)^m`, output `⊥^m ⊤^m`.
///
/// The appendix lower-bounds the ratio by `e^{mε/2}`.
pub fn audit_alg6_theorem7(
    epsilon: f64,
    m: usize,
    trials: u64,
    confidence: f64,
    rng: &mut DpRng,
) -> RatioAudit {
    let mut pattern = vec![Expected::Below; m];
    pattern.extend(std::iter::repeat_n(Expected::Above, m));
    let queries_d = vec![0.0; 2 * m];
    let mut queries_d_prime = vec![1.0; m];
    queries_d_prime.extend(std::iter::repeat_n(-1.0, m));
    audit_event(
        |r| {
            let mut alg = Alg6::new(epsilon, 1.0, r).expect("valid parameters");
            matches_pattern(&mut alg, &queries_d, &pattern, r)
        },
        |r| {
            let mut alg = Alg6::new(epsilon, 1.0, r).expect("valid parameters");
            matches_pattern(&mut alg, &queries_d_prime, &pattern, r)
        },
        trials,
        confidence,
        rng,
    )
}

/// The Theorem 7 closed-form lower bound `e^{mε/2}`.
pub fn alg6_theorem7_theoretical_lower_bound(epsilon: f64, m: usize) -> f64 {
    (m as f64 * epsilon / 2.0).exp()
}

/// Witness against **Algorithm 4**'s *nominal* `ε` claim: `m` queries
/// at 0 followed by `c` more, with `q(D′) = 1^m·(−1)^c` and output
/// `⊥^m ⊤^c`.
///
/// The same shape as Theorem 7's witness, but Alg. 4 *does* abort after
/// `c` positives, so unlike Alg. 3/5/6 its loss does not diverge — it
/// saturates at the paper's corrected bound `(1+6c)/4 · ε` (Fig. 2,
/// last row). Growing `m` pushes the measured ratio *above the nominal
/// `e^ε`* (the published claim) while every measurement stays below the
/// corrected bound; [`alg4_corrected_bound_general`] gives the ceiling.
pub fn audit_alg4_exceeds_nominal(
    epsilon: f64,
    m: usize,
    c: usize,
    trials: u64,
    confidence: f64,
    rng: &mut DpRng,
) -> RatioAudit {
    let mut pattern = vec![Expected::Below; m];
    pattern.extend(std::iter::repeat_n(Expected::Above, c));
    let queries_d = vec![0.0; m + c];
    let mut queries_d_prime = vec![1.0; m];
    queries_d_prime.extend(std::iter::repeat_n(-1.0, c));
    audit_event(
        |r| {
            let mut alg = Alg4::new(epsilon, 1.0, c, r).expect("valid parameters");
            matches_pattern(&mut alg, &queries_d, &pattern, r)
        },
        |r| {
            let mut alg = Alg4::new(epsilon, 1.0, c, r).expect("valid parameters");
            matches_pattern(&mut alg, &queries_d_prime, &pattern, r)
        },
        trials,
        confidence,
        rng,
    )
}

/// Alg. 4's corrected privacy bound for general queries,
/// `(1+6c)/4 · ε` — the ceiling no witness can exceed.
pub fn alg4_corrected_bound_general(epsilon: f64, c: usize) -> f64 {
    (1.0 + 6.0 * c as f64) / 4.0 * epsilon
}

/// Alg. 4's corrected privacy bound for monotonic queries,
/// `(1+3c)/4 · ε` (the frequent-itemset use case of [13]).
pub fn alg4_corrected_bound_monotonic(epsilon: f64, c: usize) -> f64 {
    (1.0 + 3.0 * c as f64) / 4.0 * epsilon
}

/// The §3.3 / Appendix 10.3 sanity check on **Algorithm 1** (`c = 1`):
/// `t` queries with `q(D) = 0^t`, `q(D′) = 1^t`, output `⊥^t` — the
/// exact shape the flawed GPTT non-privacy proof would use to "show"
/// Alg. 1 diverges. Lemma 1 guarantees the true ratio is at most
/// `e^{ε₁} = e^{ε/2}` for **every** `t`, so a bounded measurement across
/// growing `t` is evidence the proof's logic (not Alg. 1) is broken.
pub fn audit_alg1_gptt_logic(
    epsilon: f64,
    t: usize,
    trials: u64,
    confidence: f64,
    rng: &mut DpRng,
) -> RatioAudit {
    let pattern = vec![Expected::Below; t];
    let queries_d = vec![0.0; t];
    let queries_d_prime = vec![1.0; t];
    audit_event(
        |r| {
            let mut alg = Alg1::new(epsilon, 1.0, 1, r).expect("valid parameters");
            matches_pattern(&mut alg, &queries_d, &pattern, r)
        },
        |r| {
            let mut alg = Alg1::new(epsilon, 1.0, 1, r).expect("valid parameters");
            matches_pattern(&mut alg, &queries_d_prime, &pattern, r)
        },
        trials,
        confidence,
        rng,
    )
}

/// Lemma 1's bound on the all-negative output ratio: `e^{ε/2}`.
pub fn alg1_lemma1_bound(epsilon: f64) -> f64 {
    (epsilon / 2.0).exp()
}

/// A *broken* SVT-Revisited: ⊤-only charging done wrong.
///
/// The correct algorithm (arXiv:2010.00917, `svt_core::alg::SvtRevisited`)
/// chains `c` cutoff-1 instances of budget `ε/c` each — the noise scales
/// carry the factor `c` precisely because the threshold noise is redrawn
/// after every positive. This variant keeps the refresh-per-⊤ structure
/// but runs every instance at the **full** `ε` (`ε₁ = ε₂ = ε/2`,
/// `ρ ~ Lap(Δ/ε₁)`, `ν ~ Lap(2Δ/ε₂)`) — the "⊥ answers are free, so
/// the refreshes must be free too" misreading. Each instance alone is
/// `ε`-DP; `c` of them compose to `cε` while the mechanism still
/// claims `ε`.
struct BrokenRevisited {
    rho: f64,
    threshold_noise: Laplace,
    query_noise: Laplace,
    c: usize,
    count: usize,
}

impl BrokenRevisited {
    fn new(epsilon: f64, c: usize, rng: &mut DpRng) -> Self {
        let half = epsilon / 2.0;
        let threshold_noise = Laplace::new(1.0 / half).expect("valid scale");
        let query_noise = Laplace::new(2.0 / half).expect("valid scale");
        let rho = threshold_noise.sample(rng);
        Self {
            rho,
            threshold_noise,
            query_noise,
            c,
            count: 0,
        }
    }
}

impl SparseVector for BrokenRevisited {
    fn respond(&mut self, query_answer: f64, threshold: f64, rng: &mut DpRng) -> Result<SvtAnswer> {
        let nu = self.query_noise.sample(rng);
        if query_answer + nu >= threshold + self.rho {
            self.count += 1;
            if self.count < self.c {
                self.rho = self.threshold_noise.sample(rng);
            }
            Ok(SvtAnswer::Above)
        } else {
            Ok(SvtAnswer::Below)
        }
    }

    fn is_halted(&self) -> bool {
        self.count >= self.c
    }

    fn positives(&self) -> usize {
        self.count
    }

    fn name(&self) -> &'static str {
        "Broken SVT-Revisited (full ε per instance)"
    }
}

/// Witness against [`BrokenRevisited`]'s nominal `ε` claim: `c` blocks
/// of `m` queries at the threshold followed by one above it, with
/// `q(D)` blocks `0^m·1` and `q(D′)` blocks `1^m·0`, output
/// `(⊥^m ⊤)^c`.
///
/// Each block replays the tight cutoff-1 witness against one full-`ε`
/// instance (per-block ratio → `e^ε` as `m` grows), and the per-⊤
/// threshold refresh makes the blocks independent, so the total ratio
/// approaches `e^{cε}` while every measurement stays below the
/// composition ceiling [`broken_revisited_composition_bound`]. The
/// correct [`svt_core::alg::SvtRevisited`] survives this exact witness
/// (see the tests): its factor-`c` scales cap the total at `e^ε`.
pub fn audit_broken_revisited(
    epsilon: f64,
    m: usize,
    c: usize,
    trials: u64,
    confidence: f64,
    rng: &mut DpRng,
) -> RatioAudit {
    let (pattern, queries_d, queries_d_prime) = revisited_witness(m, c);
    audit_event(
        |r| {
            let mut alg = BrokenRevisited::new(epsilon, c, r);
            matches_pattern(&mut alg, &queries_d, &pattern, r)
        },
        |r| {
            let mut alg = BrokenRevisited::new(epsilon, c, r);
            matches_pattern(&mut alg, &queries_d_prime, &pattern, r)
        },
        trials,
        confidence,
        rng,
    )
}

/// The `(⊥^m ⊤)^c` witness shape shared by the broken and correct
/// SVT-Revisited audits.
fn revisited_witness(m: usize, c: usize) -> (Vec<Expected>, Vec<f64>, Vec<f64>) {
    let mut pattern = Vec::with_capacity(c * (m + 1));
    let mut queries_d = Vec::with_capacity(c * (m + 1));
    let mut queries_d_prime = Vec::with_capacity(c * (m + 1));
    for _ in 0..c {
        pattern.extend(std::iter::repeat_n(Expected::Below, m));
        pattern.push(Expected::Above);
        queries_d.extend(std::iter::repeat_n(0.0, m));
        queries_d.push(1.0);
        queries_d_prime.extend(std::iter::repeat_n(1.0, m));
        queries_d_prime.push(0.0);
    }
    (pattern, queries_d, queries_d_prime)
}

/// What [`BrokenRevisited`] actually spends: `c` composed full-`ε`
/// instances, i.e. `cε` — the ceiling its measured loss cannot exceed.
pub fn broken_revisited_composition_bound(epsilon: f64, c: usize) -> f64 {
    c as f64 * epsilon
}

/// A *broken* exponential-noise SVT: the scales forget the cutoff.
///
/// The correct algorithm (arXiv:2407.20068, `svt_core::alg::ExpNoiseSvt`)
/// draws `ν ~ Exp(2cΔ/ε₂)` — one-sided noise at the Laplace scales,
/// `c` factor included. This variant drops the `c`: `ν ~ Exp(2Δ/ε₂)`,
/// the same mistake that breaks Algs. 4 and 6, so each of its `c`
/// positive answers leaks a full `ε₂/2` instead of `ε₂/(2c)`.
struct BrokenExpNoise {
    rho: f64,
    query_noise: Exponential,
    c: usize,
    count: usize,
}

impl BrokenExpNoise {
    fn new(epsilon: f64, c: usize, rng: &mut DpRng) -> Self {
        let half = epsilon / 2.0;
        let threshold_noise = Exponential::new(1.0 / half).expect("valid scale");
        let query_noise = Exponential::new(2.0 / half).expect("valid scale");
        let rho = threshold_noise.sample(rng);
        Self {
            rho,
            query_noise,
            c,
            count: 0,
        }
    }
}

impl SparseVector for BrokenExpNoise {
    fn respond(&mut self, query_answer: f64, threshold: f64, rng: &mut DpRng) -> Result<SvtAnswer> {
        let nu = self.query_noise.sample(rng);
        if query_answer + nu >= threshold + self.rho {
            self.count += 1;
            Ok(SvtAnswer::Above)
        } else {
            Ok(SvtAnswer::Below)
        }
    }

    fn is_halted(&self) -> bool {
        self.count >= self.c
    }

    fn positives(&self) -> usize {
        self.count
    }

    fn name(&self) -> &'static str {
        "Broken exp-noise SVT (no c factor)"
    }
}

/// Witness against [`BrokenExpNoise`]'s nominal `ε` claim: `c` queries
/// with `q(D) = 0^c`, `q(D′) = (−1)^c`, output `⊤^c`.
///
/// One-sided noise makes this witness *exactly* computable: both `ρ`
/// and every `ν` are non-negative, so conditioned on any `ρ` the ratio
/// of `Pr[⊤^c]` across the neighbors is `e^{cΔ/b₂}` with no tail-mixing
/// — see [`broken_exp_noise_theoretical_ratio`]. Without the `c` factor
/// that is `e^{cε/4}`, which overtakes the nominal `e^ε` as soon as
/// `c > 4`; the correct scale caps the same product at `e^{ε/4}`
/// regardless of `c`.
pub fn audit_broken_exp_noise(
    epsilon: f64,
    c: usize,
    trials: u64,
    confidence: f64,
    rng: &mut DpRng,
) -> RatioAudit {
    let pattern = vec![Expected::Above; c];
    let queries_d = vec![0.0; c];
    let queries_d_prime = vec![-1.0; c];
    audit_event(
        |r| {
            let mut alg = BrokenExpNoise::new(epsilon, c, r);
            matches_pattern(&mut alg, &queries_d, &pattern, r)
        },
        |r| {
            let mut alg = BrokenExpNoise::new(epsilon, c, r);
            matches_pattern(&mut alg, &queries_d_prime, &pattern, r)
        },
        trials,
        confidence,
        rng,
    )
}

/// The exact `⊤^c` witness ratio for [`BrokenExpNoise`]: `e^{cε/4}`
/// (query scale `2Δ/ε₂` with `ε₂ = ε/2`, one `Δ` shift per positive).
pub fn broken_exp_noise_theoretical_ratio(epsilon: f64, c: usize) -> f64 {
    (c as f64 * epsilon / 4.0).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem3_event_is_impossible_on_d_prime() {
        let mut rng = DpRng::seed_from_u64(653);
        let audit = audit_alg5_theorem3(1.0, 30_000, 0.95, &mut rng);
        assert_eq!(audit.on_d_prime.successes, 0, "impossible event fired");
        // Point estimate on D matches the closed form.
        let exact = alg5_theorem3_exact_probability(1.0);
        assert!((exact - 0.19673).abs() < 1e-4, "closed form {exact}");
        assert!(
            audit.on_d.lower <= exact && exact <= audit.on_d.upper,
            "exact {exact} outside CI [{}, {}]",
            audit.on_d.lower,
            audit.on_d.upper
        );
        // The certified loss already dwarfs the nominal ε = 1.
        assert!(audit.epsilon_lower_bound() > 5.0);
        assert!(audit.refutes_epsilon_dp(1.0));
    }

    #[test]
    fn theorem3_bound_grows_with_trials() {
        let mut rng = DpRng::seed_from_u64(659);
        let small = audit_alg5_theorem3(1.0, 2_000, 0.95, &mut rng);
        let large = audit_alg5_theorem3(1.0, 60_000, 0.95, &mut rng);
        assert!(
            large.epsilon_lower_bound() > small.epsilon_lower_bound() + 2.0,
            "no growth: {} vs {}",
            small.epsilon_lower_bound(),
            large.epsilon_lower_bound()
        );
    }

    #[test]
    fn theorem6_ratio_matches_closed_form() {
        let (eps, m) = (2.0, 4);
        let mut rng = DpRng::seed_from_u64(661);
        let audit = audit_alg3_theorem6(eps, m, 0.25, 150_000, 0.95, &mut rng);
        let theory = alg3_theorem6_theoretical_ratio(eps, m); // e³ ≈ 20.1
        assert!(audit.on_d.successes > 100, "need signal on D");
        assert!(audit.on_d_prime.successes > 0, "need signal on D'");
        let point = audit.point_epsilon().exp();
        assert!(
            point > theory / 2.0 && point < theory * 2.0,
            "measured ratio {point} vs theory {theory}"
        );
        // Refutes the nominal ε = 2 claim.
        assert!(
            audit.refutes_epsilon_dp(2.0),
            "bound {}",
            audit.epsilon_lower_bound()
        );
    }

    #[test]
    fn theorem7_ratio_exceeds_lower_bound_scaling() {
        let (eps, m) = (2.0, 3);
        let mut rng = DpRng::seed_from_u64(673);
        let audit = audit_alg6_theorem7(eps, m, 200_000, 0.95, &mut rng);
        assert!(audit.on_d.successes > 100, "need signal on D");
        let theory = alg6_theorem7_theoretical_lower_bound(eps, m); // e³
        let point = audit.point_epsilon().exp();
        assert!(point > theory * 0.5, "ratio {point} vs theory ≥ {theory}");
        // Refutes the nominal ε = 2 claim.
        assert!(
            audit.refutes_epsilon_dp(2.0),
            "bound {}",
            audit.epsilon_lower_bound()
        );
    }

    #[test]
    fn alg1_stays_within_lemma1_bound_as_t_grows() {
        // The flawed GPTT logic predicts divergence in t; Lemma 1 says
        // ratio ≤ e^{ε/2} ≈ 1.65 for ε = 1. Verify boundedness at small
        // and large t.
        let mut rng = DpRng::seed_from_u64(677);
        // The all-⊥ event gets rarer as t grows, so scale the trial
        // budget with t to keep the estimates informative.
        for &(t, trials) in &[(2usize, 40_000u64), (8, 120_000), (20, 400_000)] {
            let audit = audit_alg1_gptt_logic(1.0, t, trials, 0.95, &mut rng);
            assert!(audit.on_d.successes > 50, "t={t}: need signal");
            let point = audit.point_epsilon().exp();
            let bound = alg1_lemma1_bound(1.0);
            assert!(
                point < bound * 1.25,
                "t={t}: measured ratio {point} far exceeds Lemma 1 bound {bound}"
            );
            assert!(!audit.refutes_epsilon_dp(1.0), "t={t}");
        }
    }

    #[test]
    fn alg4_exceeds_nominal_but_respects_corrected_bound() {
        // ε = 2, c = 1: nominal claim e² ≈ 7.4; corrected bound
        // (1+6)/4·ε = 3.5 ⇒ e^3.5 ≈ 33. With m = 12 forcing the noisy
        // threshold high, the measured ratio must sit strictly between.
        let (eps, m, c) = (2.0, 12usize, 1usize);
        let mut rng = DpRng::seed_from_u64(683);
        let audit = audit_alg4_exceeds_nominal(eps, m, c, 400_000, 0.95, &mut rng);
        assert!(audit.on_d.successes > 100, "need signal on D");
        let point = audit.point_epsilon();
        assert!(
            point > eps,
            "measured loss {point} should exceed nominal {eps}"
        );
        let corrected = alg4_corrected_bound_general(eps, c);
        assert!(
            audit.epsilon_lower_bound() < corrected,
            "certified {} must stay below the corrected bound {corrected}",
            audit.epsilon_lower_bound()
        );
        assert!(
            audit.refutes_epsilon_dp(eps),
            "should refute the nominal claim"
        );
    }

    #[test]
    fn alg4_corrected_bounds_match_figure2() {
        assert!((alg4_corrected_bound_general(1.0, 1) - 1.75).abs() < 1e-12);
        assert!((alg4_corrected_bound_general(0.1, 50) - 7.525).abs() < 1e-12);
        assert!((alg4_corrected_bound_monotonic(1.0, 1) - 1.0).abs() < 1e-12);
        // Monotonic is always at least as tight as general.
        for c in 1..20 {
            assert!(alg4_corrected_bound_monotonic(0.3, c) <= alg4_corrected_bound_general(0.3, c));
        }
    }

    #[test]
    fn broken_revisited_is_convicted_but_stays_below_composition() {
        // ε = 1, m = 4, c = 2: per-block ratio ≈ 2.30 (numerically
        // integrated; → e as m grows), two refresh-independent blocks
        // ⇒ true ratio ≈ 5.3 ≫ e^ε ≈ 2.72. The certified loss must
        // refute the nominal ε while staying below the composition
        // ceiling cε = 2.
        let (eps, m, c) = (1.0, 4usize, 2usize);
        let mut rng = DpRng::seed_from_u64(907);
        let audit = audit_broken_revisited(eps, m, c, 400_000, 0.95, &mut rng);
        assert!(audit.on_d.successes > 100, "need signal on D");
        assert!(audit.on_d_prime.successes > 20, "need signal on D'");
        assert!(
            audit.refutes_epsilon_dp(eps),
            "broken ⊤-only charging must be convicted: bound {}",
            audit.epsilon_lower_bound()
        );
        assert!(
            audit.epsilon_lower_bound() < broken_revisited_composition_bound(eps, c),
            "certified {} must stay below the composition bound {}",
            audit.epsilon_lower_bound(),
            broken_revisited_composition_bound(eps, c)
        );
    }

    #[test]
    fn correct_revisited_survives_the_broken_witness() {
        // The identical (⊥^m ⊤)^c witness run against the *correct*
        // SvtRevisited (factor-c scales): the measured ratio must stay
        // consistent with its ε-DP claim.
        use svt_core::alg::{StandardSvtConfig, SvtRevisited};
        let (eps, m, c) = (1.0, 4usize, 2usize);
        let (pattern, queries_d, queries_d_prime) = revisited_witness(m, c);
        let cfg = StandardSvtConfig::from_ratio(eps, 1.0, 1.0, c, false).unwrap();
        let mut rng = DpRng::seed_from_u64(911);
        let audit = audit_event(
            |r| {
                let mut alg = SvtRevisited::new(cfg, r).unwrap();
                matches_pattern(&mut alg, &queries_d, &pattern, r)
            },
            |r| {
                let mut alg = SvtRevisited::new(cfg, r).unwrap();
                matches_pattern(&mut alg, &queries_d_prime, &pattern, r)
            },
            400_000,
            0.95,
            &mut rng,
        );
        assert!(audit.on_d.successes > 100, "need signal on D");
        assert!(
            !audit.refutes_epsilon_dp(eps),
            "correct SVT-Revisited wrongly convicted: bound {}",
            audit.epsilon_lower_bound()
        );
    }

    #[test]
    fn broken_exp_noise_ratio_matches_the_exact_form_and_convicts() {
        // ε = 1, c = 8: exact witness ratio e^{cε/4} = e² ≈ 7.39 vs the
        // nominal ceiling e¹. The point estimate must sit on the closed
        // form and the certified bound must refute ε.
        let (eps, c) = (1.0, 8usize);
        let mut rng = DpRng::seed_from_u64(919);
        let audit = audit_broken_exp_noise(eps, c, 60_000, 0.95, &mut rng);
        assert!(audit.on_d.successes > 1_000, "need signal on D");
        assert!(audit.on_d_prime.successes > 100, "need signal on D'");
        let theory = broken_exp_noise_theoretical_ratio(eps, c);
        assert!((theory - 2.0f64.exp()).abs() < 1e-12);
        let point = audit.point_epsilon().exp();
        assert!(
            point > theory * 0.8 && point < theory * 1.25,
            "measured ratio {point} vs exact {theory}"
        );
        assert!(
            audit.refutes_epsilon_dp(eps),
            "missing c factor must be convicted: bound {}",
            audit.epsilon_lower_bound()
        );
    }

    #[test]
    fn correct_exp_noise_survives_the_broken_witness() {
        // Same ⊤^c witness against the correct ExpNoiseSvt: with the c
        // factor in place the exact ratio is e^{ε/4} ≈ 1.28 total, far
        // inside the ε-DP envelope, however large c grows.
        use svt_core::alg::{ExpNoiseSvt, StandardSvtConfig};
        let (eps, c) = (1.0, 8usize);
        let pattern = vec![Expected::Above; c];
        let queries_d = vec![0.0; c];
        let queries_d_prime = vec![-1.0; c];
        let cfg = StandardSvtConfig::from_ratio(eps, 1.0, 1.0, c, false).unwrap();
        let mut rng = DpRng::seed_from_u64(929);
        let audit = audit_event(
            |r| {
                let mut alg = ExpNoiseSvt::new(cfg, r).unwrap();
                matches_pattern(&mut alg, &queries_d, &pattern, r)
            },
            |r| {
                let mut alg = ExpNoiseSvt::new(cfg, r).unwrap();
                matches_pattern(&mut alg, &queries_d_prime, &pattern, r)
            },
            60_000,
            0.95,
            &mut rng,
        );
        assert!(audit.on_d.successes > 1_000, "need signal on D");
        assert!(
            !audit.refutes_epsilon_dp(eps),
            "correct exp-noise SVT wrongly convicted: bound {}",
            audit.epsilon_lower_bound()
        );
    }

    #[test]
    fn closed_forms_are_monotone_in_m() {
        assert!(alg3_theorem6_theoretical_ratio(1.0, 10) > alg3_theorem6_theoretical_ratio(1.0, 5));
        assert!(
            alg6_theorem7_theoretical_lower_bound(1.0, 10)
                > alg6_theorem7_theoretical_lower_bound(1.0, 5)
        );
        assert!((alg1_lemma1_bound(2.0) - std::f64::consts::E).abs() < 1e-12);
    }
}
