//! # dp-auditor
//!
//! Empirical differential-privacy auditing for the `sparse-vector`
//! workspace.
//!
//! The paper's central claims are *about probability ratios*: Alg. 1
//! keeps `Pr[A(D) = a] / Pr[A(D′) = a] ≤ e^ε` for every output `a`
//! (Theorem 2), while Alg. 3, 5 and 6 admit outputs whose ratio grows
//! without bound (Theorems 3, 6, 7). This crate makes those claims
//! executable:
//!
//! - [`special`] — the numerics (log-gamma, regularized incomplete beta
//!   and its inverse) behind exact binomial confidence intervals;
//! - [`estimate`] — Monte-Carlo event-probability estimation with
//!   Clopper–Pearson intervals;
//! - [`auditor`] — statistically sound lower bounds on the privacy loss
//!   of *any* mechanism, from paired event estimates;
//! - [`counterexamples`] — the paper's constructions, packaged: run them
//!   and watch the non-private variants' empirical `ε̂` diverge while
//!   Alg. 1 stays under its budget (including the §3.3 demonstration
//!   that the GPTT non-privacy proof's logic would wrongly "convict"
//!   Alg. 1);
//! - [`sweep`] — output-grid audits that tally *every* output a
//!   mechanism produces on a neighbor pair and certify the worst one,
//!   with Bonferroni-corrected simultaneous coverage.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod auditor;
pub mod counterexamples;
pub mod estimate;
pub mod special;
pub mod sweep;

pub use auditor::{audit_event, RatioAudit};
pub use estimate::BernoulliEstimate;
pub use sweep::{audit_output_grid, GridAudit};
