//! Ratio audits: statistically sound lower bounds on privacy loss.
//!
//! `ε`-DP demands `Pr[A(D) ∈ E] ≤ e^ε · Pr[A(D′) ∈ E]` for *every*
//! event `E` and neighbor pair. To refute a privacy claim it therefore
//! suffices to exhibit one `(D, D′, E)` whose probability ratio exceeds
//! `e^ε` — and to do that *empirically* we need the ratio's lower
//! confidence bound, `lower(D) / upper(D′)`, to exceed it. Because each
//! side uses a `confidence` interval, the combined bound holds with
//! probability at least `2·confidence − 1` (Bonferroni), which the
//! [`RatioAudit::joint_confidence`] accessor reports.

use crate::estimate::{estimate_event, BernoulliEstimate};
use dp_mechanisms::DpRng;

/// Paired event estimates on two neighboring inputs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RatioAudit {
    /// Event probability estimate under `D`.
    pub on_d: BernoulliEstimate,
    /// Event probability estimate under `D′`.
    pub on_d_prime: BernoulliEstimate,
}

impl RatioAudit {
    /// Point estimate of `ln(Pr_D / Pr_D′)` (`+∞` when the event never
    /// occurred on `D′`, `NaN` when it occurred on neither).
    pub fn point_epsilon(&self) -> f64 {
        (self.on_d.point() / self.on_d_prime.point()).ln()
    }

    /// A lower confidence bound on the privacy loss
    /// `ln(Pr_D / Pr_D′)`:
    ///
    /// * `0` when the data cannot certify any loss
    ///   (`lower(D) ≤ upper(D′)` or no hits on `D`);
    /// * `+∞` when the event occurred on `D` but its upper bound on `D′`
    ///   is exactly 0 (impossible under any finite `ε` — but note
    ///   Clopper–Pearson never returns an exact 0 upper bound from
    ///   finitely many misses, so `∞` only arises from structurally
    ///   impossible events with `trials = 0`; in practice divergence
    ///   shows up as a bound that grows with the trial count).
    pub fn epsilon_lower_bound(&self) -> f64 {
        let lo = self.on_d.lower;
        let hi = self.on_d_prime.upper;
        if lo <= 0.0 {
            return 0.0;
        }
        if hi <= 0.0 {
            return f64::INFINITY;
        }
        (lo / hi).ln().max(0.0)
    }

    /// Joint coverage of the bound (Bonferroni over the two intervals).
    pub fn joint_confidence(&self) -> f64 {
        (self.on_d.confidence + self.on_d_prime.confidence - 1.0).max(0.0)
    }

    /// Whether the audit *refutes* an `ε`-DP claim at the joint
    /// confidence level.
    pub fn refutes_epsilon_dp(&self, epsilon: f64) -> bool {
        self.epsilon_lower_bound() > epsilon
    }
}

/// Runs a mechanism-event pair `trials` times on each neighbor and
/// packages the paired estimates.
///
/// `on_d` / `on_d_prime` must each execute one *fresh, independent*
/// run of the mechanism on the respective input and report whether the
/// target output occurred.
///
/// ```
/// use dp_auditor::audit_event;
/// use dp_mechanisms::{DpRng, Laplace};
///
/// // Audit the Laplace mechanism on neighbors with true answers 1 / 0:
/// // the event "release ≥ 0.5" separates them, but never by more than ε.
/// let eps = 1.0;
/// let lap = Laplace::for_query(1.0, eps).unwrap();
/// let mut rng = DpRng::seed_from_u64(3);
/// let audit = audit_event(
///     |r| lap.sample(r) + 1.0 >= 0.5,
///     |r| lap.sample(r) >= 0.5,
///     20_000,
///     0.95,
///     &mut rng,
/// );
/// assert!(audit.epsilon_lower_bound() > 0.0); // real separation…
/// assert!(!audit.refutes_epsilon_dp(eps));    // …within the ε-DP bound
/// ```
pub fn audit_event<F, G>(
    on_d: F,
    on_d_prime: G,
    trials: u64,
    confidence: f64,
    rng: &mut DpRng,
) -> RatioAudit
where
    F: FnMut(&mut DpRng) -> bool,
    G: FnMut(&mut DpRng) -> bool,
{
    let d = estimate_event(on_d, trials, confidence, rng);
    let d_prime = estimate_event(on_d_prime, trials, confidence, rng);
    RatioAudit {
        on_d: d,
        on_d_prime: d_prime,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_mechanisms_certify_nothing() {
        let mut rng = DpRng::seed_from_u64(619);
        let audit = audit_event(
            |r| r.bernoulli(0.3),
            |r| r.bernoulli(0.3),
            20_000,
            0.95,
            &mut rng,
        );
        assert!(audit.epsilon_lower_bound() < 0.1);
        assert!(!audit.refutes_epsilon_dp(0.2));
    }

    #[test]
    fn separated_probabilities_are_detected() {
        // p = 0.4 vs 0.1: true loss ln(4) ≈ 1.386.
        let mut rng = DpRng::seed_from_u64(631);
        let audit = audit_event(
            |r| r.bernoulli(0.4),
            |r| r.bernoulli(0.1),
            50_000,
            0.95,
            &mut rng,
        );
        let bound = audit.epsilon_lower_bound();
        assert!(bound > 1.2 && bound < 1.45, "bound {bound}");
        assert!(audit.refutes_epsilon_dp(1.0));
        assert!(!audit.refutes_epsilon_dp(1.5));
        let point = audit.point_epsilon();
        assert!((point - 4f64.ln()).abs() < 0.1, "point {point}");
    }

    #[test]
    fn never_on_d_prime_grows_with_trials() {
        // An event with positive probability on D and zero on D':
        // the certified bound must increase as trials accumulate
        // (CP upper bound on D' shrinks like 1/n).
        let mut rng = DpRng::seed_from_u64(641);
        let small = audit_event(|r| r.bernoulli(0.2), |_| false, 1_000, 0.95, &mut rng);
        let large = audit_event(|r| r.bernoulli(0.2), |_| false, 100_000, 0.95, &mut rng);
        assert!(large.epsilon_lower_bound() > small.epsilon_lower_bound() + 3.0);
        assert!(large.refutes_epsilon_dp(8.0));
    }

    #[test]
    fn joint_confidence_is_bonferroni() {
        let mut rng = DpRng::seed_from_u64(643);
        let audit = audit_event(|_| true, |_| true, 100, 0.975, &mut rng);
        assert!((audit.joint_confidence() - 0.95).abs() < 1e-12);
    }

    #[test]
    fn no_hits_on_d_certifies_zero() {
        let mut rng = DpRng::seed_from_u64(647);
        let audit = audit_event(|_| false, |_| false, 1000, 0.95, &mut rng);
        assert_eq!(audit.epsilon_lower_bound(), 0.0);
    }
}
