//! Special functions backing exact binomial confidence intervals.
//!
//! Clopper–Pearson bounds are quantiles of Beta distributions, which
//! reduce to inverting the regularized incomplete beta function
//! `I_x(a, b)`. Everything here is implemented from scratch (Lanczos
//! log-gamma, Lentz continued fraction, bisection inversion) — the
//! auditor's statistical soundness rests on these, so they carry their
//! own reference tests.

/// Natural log of the gamma function for `x > 0` (Lanczos, g = 7).
///
/// Absolute error is below 1e-13 over the range used here.
pub fn ln_gamma(x: f64) -> f64 {
    // Lanczos coefficients for g = 7, n = 9.
    const COEFFS: [f64; 8] = [
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    const G: f64 = 7.0;
    const SQRT_TWO_PI: f64 = 2.506_628_274_631_000_7;
    debug_assert!(x > 0.0, "ln_gamma requires x > 0");
    if x < 0.5 {
        // Reflection: Γ(x)Γ(1−x) = π / sin(πx).
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = 0.999_999_999_999_809_9;
    for (i, &c) in COEFFS.iter().enumerate() {
        acc += c / (x + (i + 1) as f64);
    }
    let t = x + G + 0.5;
    SQRT_TWO_PI.ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Continued fraction for the incomplete beta function (Lentz's method,
/// as in Numerical Recipes `betacf`).
fn betacf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 3e-16;
    const FPMIN: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m_f = m as f64;
        let m2 = 2.0 * m_f;
        // Even step.
        let aa = m_f * (b - m_f) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m_f) * (qab + m_f) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// The regularized incomplete beta function `I_x(a, b)` for `a, b > 0`,
/// clamped to `[0, 1]` outside the support.
pub fn reg_inc_beta(a: f64, b: f64, x: f64) -> f64 {
    debug_assert!(a > 0.0 && b > 0.0, "shape parameters must be positive");
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    // Use the continued fraction in its rapidly convergent regime.
    if x < (a + 1.0) / (a + b + 2.0) {
        front * betacf(a, b, x) / a
    } else {
        1.0 - front * betacf(b, a, 1.0 - x) / b
    }
}

/// Inverse of `I_x(a, b)` in `x`, by bisection (robust; ~1e-14 accuracy
/// after 100 iterations, plenty for confidence bounds).
pub fn inv_reg_inc_beta(a: f64, b: f64, p: f64) -> f64 {
    debug_assert!((0.0..=1.0).contains(&p), "probability out of range");
    if p <= 0.0 {
        return 0.0;
    }
    if p >= 1.0 {
        return 1.0;
    }
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    for _ in 0..100 {
        let mid = 0.5 * (lo + hi);
        if reg_inc_beta(a, b, mid) < p {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Two-sided Clopper–Pearson interval for `successes` out of `trials`
/// at the given `confidence` (e.g. 0.95).
///
/// The bounds are Beta quantiles:
/// `lower = BetaInv(α/2; k, n−k+1)`, `upper = BetaInv(1−α/2; k+1, n−k)`,
/// with the conventional exact endpoints at `k = 0` and `k = n`.
pub fn clopper_pearson(successes: u64, trials: u64, confidence: f64) -> (f64, f64) {
    debug_assert!(successes <= trials);
    debug_assert!((0.0..1.0).contains(&(1.0 - confidence)));
    let alpha = 1.0 - confidence;
    let k = successes as f64;
    let n = trials as f64;
    let lower = if successes == 0 {
        0.0
    } else {
        inv_reg_inc_beta(k, n - k + 1.0, alpha / 2.0)
    };
    let upper = if successes == trials {
        1.0
    } else {
        inv_reg_inc_beta(k + 1.0, n - k, 1.0 - alpha / 2.0)
    };
    (lower, upper)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_known_values() {
        // Γ(1) = Γ(2) = 1; Γ(0.5) = √π; Γ(5) = 24.
        assert!(ln_gamma(1.0).abs() < 1e-12);
        assert!(ln_gamma(2.0).abs() < 1e-12);
        assert!((ln_gamma(0.5) - 0.5 * std::f64::consts::PI.ln()).abs() < 1e-12);
        assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-12);
        // Large argument: Γ(171) is near the f64 limit; ln must be fine.
        assert!((ln_gamma(171.0) - 706.573_062_245_787_4).abs() < 1e-6);
    }

    #[test]
    fn ln_gamma_satisfies_recurrence() {
        // ln Γ(x+1) = ln Γ(x) + ln x.
        for &x in &[0.3, 0.9, 1.5, 7.2, 42.0] {
            let lhs = ln_gamma(x + 1.0);
            let rhs = ln_gamma(x) + x.ln();
            assert!((lhs - rhs).abs() < 1e-10, "x={x}");
        }
    }

    #[test]
    fn incomplete_beta_closed_forms() {
        // I_x(1, 1) = x.
        for &x in &[0.1, 0.5, 0.9] {
            assert!((reg_inc_beta(1.0, 1.0, x) - x).abs() < 1e-12);
        }
        // I_x(2, 2) = 3x² − 2x³.
        for &x in &[0.2, 0.5, 0.8] {
            let want = 3.0 * x * x - 2.0 * x * x * x;
            assert!((reg_inc_beta(2.0, 2.0, x) - want).abs() < 1e-12, "x={x}");
        }
        // I_x(1, b) = 1 − (1−x)^b.
        let (x, b) = (0.3f64, 5.0f64);
        assert!((reg_inc_beta(1.0, b, x) - (1.0 - (1.0 - x).powf(b))).abs() < 1e-12);
    }

    #[test]
    fn incomplete_beta_edges_and_symmetry() {
        assert_eq!(reg_inc_beta(3.0, 4.0, 0.0), 0.0);
        assert_eq!(reg_inc_beta(3.0, 4.0, 1.0), 1.0);
        // I_x(a,b) = 1 − I_{1−x}(b,a).
        for &(a, b, x) in &[(2.5, 7.0, 0.3), (10.0, 0.5, 0.8), (4.0, 4.0, 0.5)] {
            let lhs = reg_inc_beta(a, b, x);
            let rhs = 1.0 - reg_inc_beta(b, a, 1.0 - x);
            assert!((lhs - rhs).abs() < 1e-10, "a={a} b={b} x={x}");
        }
    }

    #[test]
    fn incomplete_beta_matches_binomial_tail() {
        // P[Bin(n, p) ≥ k] = I_p(k, n − k + 1).
        let (n, p, k) = (20u64, 0.3f64, 7u64);
        let mut tail = 0.0;
        for j in k..=n {
            let ln_c = ln_gamma(n as f64 + 1.0)
                - ln_gamma(j as f64 + 1.0)
                - ln_gamma((n - j) as f64 + 1.0);
            tail += (ln_c + j as f64 * p.ln() + (n - j) as f64 * (1.0 - p).ln()).exp();
        }
        let beta = reg_inc_beta(k as f64, (n - k + 1) as f64, p);
        assert!((tail - beta).abs() < 1e-10, "tail {tail} vs beta {beta}");
    }

    #[test]
    fn inverse_round_trips() {
        for &(a, b) in &[(1.0, 1.0), (2.0, 5.0), (30.0, 70.0), (0.5, 0.5)] {
            for &p in &[0.01, 0.3, 0.5, 0.9, 0.999] {
                let x = inv_reg_inc_beta(a, b, p);
                assert!(
                    (reg_inc_beta(a, b, x) - p).abs() < 1e-9,
                    "a={a} b={b} p={p}"
                );
            }
        }
        assert_eq!(inv_reg_inc_beta(2.0, 2.0, 0.0), 0.0);
        assert_eq!(inv_reg_inc_beta(2.0, 2.0, 1.0), 1.0);
    }

    #[test]
    fn clopper_pearson_known_values() {
        // 0/10 successes at 95%: upper = 1 − (α/2)^{1/n} ≈ 0.3085.
        let (lo, hi) = clopper_pearson(0, 10, 0.95);
        assert_eq!(lo, 0.0);
        assert!((hi - (1.0 - 0.025f64.powf(0.1))).abs() < 1e-9, "hi={hi}");
        // Symmetric case: 10/10.
        let (lo2, hi2) = clopper_pearson(10, 10, 0.95);
        assert_eq!(hi2, 1.0);
        assert!((lo2 - 0.025f64.powf(0.1)).abs() < 1e-9);
        // Midpoint sanity: 50/100 straddles 0.5 roughly symmetrically.
        let (lo3, hi3) = clopper_pearson(50, 100, 0.95);
        assert!(lo3 < 0.5 && hi3 > 0.5);
        assert!((lo3 - 0.3983).abs() < 0.001, "lo={lo3}");
        assert!((hi3 - 0.6017).abs() < 0.001, "hi={hi3}");
    }

    #[test]
    fn clopper_pearson_interval_contains_point_estimate() {
        for &(k, n) in &[(1u64, 7u64), (3, 9), (250, 1000), (999, 1000)] {
            let (lo, hi) = clopper_pearson(k, n, 0.99);
            let p_hat = k as f64 / n as f64;
            assert!(lo <= p_hat && p_hat <= hi, "k={k} n={n}");
        }
    }

    #[test]
    fn clopper_pearson_narrows_with_more_trials() {
        let (lo1, hi1) = clopper_pearson(10, 100, 0.95);
        let (lo2, hi2) = clopper_pearson(1000, 10_000, 0.95);
        assert!(hi2 - lo2 < hi1 - lo1);
    }

    #[test]
    fn clopper_pearson_coverage_is_at_least_nominal() {
        // Empirical coverage check: for fixed p, the 90% CP interval
        // must cover p in at least ~90% of simulated experiments.
        use dp_mechanisms::DpRng;
        let mut rng = DpRng::seed_from_u64(601);
        let (p, n, reps) = (0.2f64, 60u64, 2000usize);
        let mut covered = 0;
        for _ in 0..reps {
            let k = (0..n).filter(|_| rng.bernoulli(p)).count() as u64;
            let (lo, hi) = clopper_pearson(k, n, 0.90);
            if lo <= p && p <= hi {
                covered += 1;
            }
        }
        let rate = covered as f64 / reps as f64;
        assert!(rate >= 0.89, "coverage {rate}");
    }
}
