//! Micro-benchmarks for the DP primitive substrate.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use dp_mechanisms::composition::{per_instance_epsilon, ApproxDp};
use dp_mechanisms::gumbel::Gumbel;
use dp_mechanisms::laplace::Laplace;
use dp_mechanisms::samplers::{sample_binomial, sample_binomial_exact, sample_hypergeometric};
use dp_mechanisms::{DpRng, ExponentialMechanism, TwoSidedGeometric};
use std::hint::black_box;

fn bench_laplace_sampling(c: &mut Criterion) {
    let laplace = Laplace::new(2.0).unwrap();
    let mut rng = DpRng::seed_from_u64(1);
    c.bench_function("laplace/sample", |b| {
        b.iter(|| black_box(laplace.sample(&mut rng)))
    });
    c.bench_function("laplace/survival", |b| {
        let mut x = 0.0f64;
        b.iter(|| {
            x += 0.001;
            black_box(laplace.survival(black_box(x % 40.0 - 20.0)))
        })
    });
    c.bench_function("laplace/quantile", |b| {
        let mut p = 0.001;
        b.iter(|| {
            p = (p + 0.00037) % 0.998 + 0.001;
            black_box(laplace.quantile(black_box(p)).unwrap())
        })
    });
}

fn bench_gumbel_sampling(c: &mut Criterion) {
    let gumbel = Gumbel::standard();
    let mut rng = DpRng::seed_from_u64(2);
    c.bench_function("gumbel/sample", |b| {
        b.iter(|| black_box(gumbel.sample(&mut rng)))
    });
}

fn bench_em_selection(c: &mut Criterion) {
    let mut group = c.benchmark_group("em/select");
    for &n in &[100usize, 10_000, 100_000] {
        let scores = svt_bench::bench_scores(n);
        let em = ExponentialMechanism::new_monotonic(0.1, 1.0).unwrap();
        let mut rng = DpRng::seed_from_u64(3);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(em.select(scores.as_slice(), &mut rng).unwrap()))
        });
    }
    group.finish();
}

fn bench_binomial_regimes(c: &mut Criterion) {
    let mut rng = DpRng::seed_from_u64(4);
    let mut group = c.benchmark_group("samplers/binomial");
    // Small-mean regime (exact geometric skipping).
    group.bench_function("skip_n1e6_p1e-5", |b| {
        b.iter(|| black_box(sample_binomial(1_000_000, 1e-5, &mut rng).unwrap()))
    });
    // Large-mean regime (normal approximation).
    group.bench_function("normal_n1e6_p0.3", |b| {
        b.iter(|| black_box(sample_binomial(1_000_000, 0.3, &mut rng).unwrap()))
    });
    // Reference O(n) sampler at a size where it is still feasible.
    group.bench_function("exact_n1e4_p0.3", |b| {
        b.iter(|| black_box(sample_binomial_exact(10_000, 0.3, &mut rng).unwrap()))
    });
    group.finish();
}

fn bench_hypergeometric(c: &mut Criterion) {
    let mut rng = DpRng::seed_from_u64(5);
    c.bench_function("samplers/hypergeometric_draws300", |b| {
        b.iter(|| black_box(sample_hypergeometric(1_000_000, 5_000, 300, &mut rng).unwrap()))
    });
}

fn bench_shuffle(c: &mut Criterion) {
    let mut rng = DpRng::seed_from_u64(6);
    let mut group = c.benchmark_group("rng/shuffle");
    for &n in &[1_657usize, 41_270] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter_batched(
                || (0..n as u32).collect::<Vec<u32>>(),
                |mut v| {
                    rng.shuffle(&mut v);
                    black_box(v)
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_geometric_sampling(c: &mut Criterion) {
    // The discrete companion of the Laplace mechanism: same ε
    // calibration, integer output. Compare against laplace/sample for
    // the integer-release cost.
    let geo = TwoSidedGeometric::from_epsilon(0.5, 1.0).unwrap();
    let mut rng = DpRng::seed_from_u64(7);
    c.bench_function("geometric/sample", |b| {
        b.iter(|| black_box(geo.sample(&mut rng)))
    });
    c.bench_function("geometric/cdf", |b| {
        let mut k = 0i64;
        b.iter(|| {
            k = (k + 1) % 41 - 20;
            black_box(geo.cdf(black_box(k)))
        })
    });
}

fn bench_composition_solver(c: &mut Criterion) {
    // The bisection behind the (ε,δ)-SVT planner: must be cheap enough
    // to run per-session.
    let target = ApproxDp::new(1.0, 1e-6).unwrap();
    let mut group = c.benchmark_group("composition/per_instance_epsilon");
    for &k in &[16usize, 256, 4096] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| black_box(per_instance_epsilon(target, k).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_laplace_sampling,
    bench_gumbel_sampling,
    bench_em_selection,
    bench_binomial_regimes,
    bench_hypergeometric,
    bench_shuffle,
    bench_geometric_sampling,
    bench_composition_solver
);
criterion_main!(benches);
