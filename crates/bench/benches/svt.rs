//! Micro-benchmarks for the SVT variants and the non-interactive
//! selection wrappers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dp_mechanisms::DpRng;
use std::hint::black_box;
use svt_core::alg::{run_svt, Alg1, Alg2, Alg4, Alg5, Alg6, SparseVector, StandardSvt};
use svt_core::allocation::BudgetRatio;
use svt_core::approx::{ApproxSvt, ApproxSvtConfig};
use svt_core::noninteractive::{svt_select, SvtSelectConfig};
use svt_core::retraversal::{svt_retraversal, RetraversalConfig};
use svt_core::Thresholds;

/// Streams 10k queries through each variant (all-below threshold so no
/// early abort skews the comparison).
fn bench_variant_streaming(c: &mut Criterion) {
    let answers = vec![-100.0f64; 10_000];
    let thresholds = Thresholds::Constant(0.0);
    let mut group = c.benchmark_group("svt/stream_10k");

    group.bench_function("alg1", |b| {
        let mut rng = DpRng::seed_from_u64(11);
        b.iter(|| {
            let mut alg = Alg1::new(0.1, 1.0, 25, &mut rng).unwrap();
            black_box(run_svt(&mut alg, &answers, &thresholds, &mut rng).unwrap())
        })
    });
    group.bench_function("alg2_dpbook", |b| {
        let mut rng = DpRng::seed_from_u64(12);
        b.iter(|| {
            let mut alg = Alg2::new(0.1, 1.0, 25, &mut rng).unwrap();
            black_box(run_svt(&mut alg, &answers, &thresholds, &mut rng).unwrap())
        })
    });
    group.bench_function("alg4", |b| {
        let mut rng = DpRng::seed_from_u64(13);
        b.iter(|| {
            let mut alg = Alg4::new(0.1, 1.0, 25, &mut rng).unwrap();
            black_box(run_svt(&mut alg, &answers, &thresholds, &mut rng).unwrap())
        })
    });
    group.bench_function("alg5_noiseless", |b| {
        let mut rng = DpRng::seed_from_u64(14);
        b.iter(|| {
            let mut alg = Alg5::new(0.1, 1.0, &mut rng).unwrap();
            black_box(run_svt(&mut alg, &answers, &thresholds, &mut rng).unwrap())
        })
    });
    group.bench_function("alg6", |b| {
        let mut rng = DpRng::seed_from_u64(15);
        b.iter(|| {
            let mut alg = Alg6::new(0.1, 1.0, &mut rng).unwrap();
            black_box(run_svt(&mut alg, &answers, &thresholds, &mut rng).unwrap())
        })
    });
    group.bench_function("alg7_standard_monotonic", |b| {
        let mut rng = DpRng::seed_from_u64(16);
        b.iter(|| {
            let mut alg =
                StandardSvt::with_ratio(0.1, 25f64.powf(2.0 / 3.0), 1.0, 25, true, &mut rng)
                    .unwrap();
            black_box(run_svt(&mut alg, &answers, &thresholds, &mut rng).unwrap())
        })
    });
    group.bench_function("approx_eps_delta", |b| {
        let config = ApproxSvtConfig {
            target: dp_mechanisms::ApproxDp::new(0.1, 1e-6).unwrap(),
            c: 25,
            sensitivity: 1.0,
            ratio: 25f64.powf(2.0 / 3.0),
            monotonic: true,
        };
        let mut rng = DpRng::seed_from_u64(18);
        b.iter(|| {
            let mut alg = ApproxSvt::new(config, &mut rng).unwrap();
            black_box(run_svt(&mut alg, &answers, &thresholds, &mut rng).unwrap())
        })
    });
    group.finish();
}

/// Full non-interactive selection passes at dataset-like sizes.
fn bench_selection_pass(c: &mut Criterion) {
    let mut group = c.benchmark_group("svt/select_pass");
    group.sample_size(20);
    for &n in &[1_657usize, 41_270] {
        let scores = svt_bench::bench_scores(n);
        let threshold = scores.paper_threshold(100);
        group.bench_with_input(BenchmarkId::new("svt_s", n), &n, |b, _| {
            let cfg = SvtSelectConfig::counting(0.1, 100, BudgetRatio::OneToCTwoThirds);
            let mut rng = DpRng::seed_from_u64(17);
            b.iter(|| black_box(svt_select(scores.as_slice(), threshold, &cfg, &mut rng).unwrap()))
        });
    }
    group.finish();
}

/// Retraversal cost as the threshold increment grows (more passes).
fn bench_retraversal_increments(c: &mut Criterion) {
    let scores = svt_bench::bench_scores(10_000);
    let threshold = scores.paper_threshold(100);
    let mut group = c.benchmark_group("svt/retraversal");
    group.sample_size(20);
    for &k in &[1.0f64, 3.0, 5.0] {
        group.bench_with_input(BenchmarkId::from_parameter(format!("{k}D")), &k, |b, &k| {
            let cfg = RetraversalConfig::paper(0.1, 100, k);
            let mut rng = DpRng::seed_from_u64(19);
            b.iter(|| {
                black_box(svt_retraversal(scores.as_slice(), threshold, &cfg, &mut rng).unwrap())
            })
        });
    }
    group.finish();
}

/// The per-query cost of the streaming trait (hot path).
fn bench_single_respond(c: &mut Criterion) {
    let mut rng = DpRng::seed_from_u64(23);
    let mut alg = Alg1::new(0.1, 1.0, usize::MAX >> 1, &mut rng).unwrap();
    c.bench_function("svt/respond_one", |b| {
        b.iter(|| black_box(alg.respond(black_box(-5.0), 0.0, &mut rng).unwrap()))
    });
}

criterion_group!(
    benches,
    bench_variant_streaming,
    bench_selection_pass,
    bench_retraversal_increments,
    bench_single_respond
);
criterion_main!(benches);
