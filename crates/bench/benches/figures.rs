//! `cargo bench` figure regeneration (`harness = false`).
//!
//! Prints a scaled-down version of every table and figure in the paper
//! (quick grid: c ∈ {25, 100, 300}, 10 runs) so that `cargo bench
//! --workspace` exercises the full reproduction path end to end. For
//! the paper-scale grid use the `svt-experiments` binaries.

use svt_experiments::cli::CliArgs;
use svt_experiments::figures;
use svt_experiments::spec::ExperimentConfig;

fn main() {
    // `cargo bench` passes `--bench`; accept and ignore harness flags.
    let args = CliArgs::default();
    let config = ExperimentConfig::quick();
    let started = std::time::Instant::now();

    svt_experiments::cli::emit(&figures::table1(), &args, "table1");
    svt_experiments::cli::emit(&figures::table2(), &args, "table2");
    svt_experiments::cli::emit(&figures::figure2_table(0.1, 50), &args, "figure2");
    svt_experiments::cli::emit(&figures::figure3(300), &args, "figure3");

    let datasets = figures::prepare_all_datasets();
    eprintln!("[bench] datasets prepared in {:.1?}", started.elapsed());

    match figures::figure4(&datasets, &config) {
        Ok(panels) => {
            for p in &panels {
                println!("{}", p.table.render());
            }
        }
        Err(e) => eprintln!("[bench] figure4 failed: {e}"),
    }
    eprintln!("[bench] figure 4 done at {:.1?}", started.elapsed());

    match figures::figure5(&datasets, &config) {
        Ok(panels) => {
            for p in &panels {
                println!("{}", p.table.render());
            }
        }
        Err(e) => eprintln!("[bench] figure5 failed: {e}"),
    }
    eprintln!("[bench] figure 5 done at {:.1?}", started.elapsed());

    match figures::alpha_table(0.1, 0.05, &[10, 100, 1_000, 100_000]) {
        Ok(t) => println!("{}", t.render()),
        Err(e) => eprintln!("[bench] alpha failed: {e}"),
    }

    println!(
        "{}",
        figures::nonprivacy_table(20_000, config.seed).render()
    );
    eprintln!(
        "[bench] all figures regenerated in {:.1?}",
        started.elapsed()
    );
}
