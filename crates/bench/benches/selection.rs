//! Private-selection ablation: EM peeling vs one-shot Gumbel top-`c`
//! vs report-noisy-max, plus the grouped heap engine.
//!
//! The one-shot Gumbel selection is distributionally identical to EM
//! peeling (see `dp-mechanisms::noisy_max`); this bench quantifies the
//! `O(cN)` → `O(N log N)`-ish cost gap that justifies using it, and the
//! further gap to the grouped heap engine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dp_mechanisms::noisy_max::{gumbel_top_c, noisy_argmax_laplace};
use dp_mechanisms::{DpRng, ExponentialMechanism};
use std::hint::black_box;
use svt_core::streaming::RunScratch;
use svt_experiments::simulate::grouped::GroupedContext;
use svt_experiments::simulate::SweepContext;
use svt_experiments::spec::AlgorithmSpec;

fn bench_peeling_vs_oneshot(c: &mut Criterion) {
    let mut group = c.benchmark_group("selection/top100");
    group.sample_size(20);
    for &n in &[10_000usize, 100_000] {
        let scores = svt_bench::bench_scores(n);
        let em = ExponentialMechanism::new_monotonic(0.001, 1.0).unwrap();
        group.bench_with_input(BenchmarkId::new("em_peeling", n), &n, |b, _| {
            let mut rng = DpRng::seed_from_u64(31);
            b.iter(|| {
                black_box(
                    em.select_without_replacement(scores.as_slice(), 100, &mut rng)
                        .unwrap(),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("gumbel_oneshot", n), &n, |b, _| {
            let mut rng = DpRng::seed_from_u64(32);
            b.iter(|| {
                black_box(gumbel_top_c(scores.as_slice(), 1.0, 0.001, true, 100, &mut rng).unwrap())
            })
        });
        group.bench_with_input(BenchmarkId::new("grouped_heap", n), &n, |b, _| {
            let sweep = SweepContext::new(&scores);
            let ctx = GroupedContext::new(&sweep, 100);
            let mut rng = DpRng::seed_from_u64(33);
            let mut scratch = RunScratch::new();
            b.iter(|| {
                black_box(
                    ctx.run_once_into(&AlgorithmSpec::Em, 0.1, &mut rng, &mut scratch)
                        .unwrap(),
                )
            })
        });
    }
    group.finish();
}

fn bench_noisy_max_baseline(c: &mut Criterion) {
    let scores = svt_bench::bench_scores(10_000);
    let mut rng = DpRng::seed_from_u64(34);
    c.bench_function("selection/noisy_argmax_10k", |b| {
        b.iter(|| black_box(noisy_argmax_laplace(scores.as_slice(), 1.0, 0.1, &mut rng).unwrap()))
    });
}

criterion_group!(benches, bench_peeling_vs_oneshot, bench_noisy_max_baseline);
criterion_main!(benches);
