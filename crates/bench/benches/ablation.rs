//! Design-choice ablations called out in DESIGN.md:
//!
//! 1. **exact vs grouped engine** — the speedup that makes the AOL
//!    sweeps tractable (and whose distributional equivalence the test
//!    suite verifies);
//! 2. **allocation-ratio sweep** — utility (mean SER) across `ε₁:ε₂`
//!    policies at fixed wall-budget, the code path behind the §4.2
//!    recommendation;
//! 3. **retraversal increments** — passes/utility as the threshold
//!    rises.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dp_mechanisms::DpRng;
use std::hint::black_box;
use svt_core::allocation::BudgetRatio;
use svt_core::streaming::RunScratch;
use svt_experiments::simulate::exact::ExactContext;
use svt_experiments::simulate::grouped::GroupedContext;
use svt_experiments::simulate::SweepContext;
use svt_experiments::spec::AlgorithmSpec;

fn engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/engine");
    group.sample_size(15);
    let alg = AlgorithmSpec::Standard {
        ratio: BudgetRatio::OneToCTwoThirds,
    };
    for &n in &[10_000usize, 200_000] {
        let scores = svt_bench::bench_scores(n);
        let sweep = SweepContext::new(&scores);
        let exact = ExactContext::new(&scores, &sweep, 100);
        group.bench_with_input(BenchmarkId::new("exact", n), &n, |b, _| {
            let mut rng = DpRng::seed_from_u64(41);
            b.iter(|| black_box(exact.run_once(&alg, 0.1, &mut rng).unwrap()))
        });
        let grouped = GroupedContext::new(&sweep, 100);
        group.bench_with_input(BenchmarkId::new("grouped", n), &n, |b, _| {
            let mut rng = DpRng::seed_from_u64(42);
            let mut scratch = RunScratch::new();
            b.iter(|| {
                black_box(
                    grouped
                        .run_once_into(&alg, 0.1, &mut rng, &mut scratch)
                        .unwrap(),
                )
            })
        });
    }
    group.finish();
}

fn allocation_ratios(c: &mut Criterion) {
    // Not a timing question but a utility one: measure mean SER per
    // policy inside the bench so `cargo bench` prints the ablation
    // series alongside the timings.
    let scores = svt_bench::bench_scores(10_000);
    let sweep = SweepContext::new(&scores);
    let ctx = GroupedContext::new(&sweep, 100);
    let mut rng = DpRng::seed_from_u64(43);
    let mut scratch = RunScratch::new();
    eprintln!("\nablation: mean SER by allocation policy (n=10k, c=100, eps=0.1, 200 runs)");
    for (name, ratio) in [
        ("1:1", BudgetRatio::OneToOne),
        ("1:3", BudgetRatio::OneToThree),
        ("1:c", BudgetRatio::OneToC),
        ("1:c^(2/3)", BudgetRatio::OneToCTwoThirds),
    ] {
        let alg = AlgorithmSpec::Standard { ratio };
        let mean: f64 = (0..200)
            .map(|_| {
                ctx.run_once_into(&alg, 0.1, &mut rng, &mut scratch)
                    .unwrap()
                    .ser
            })
            .sum::<f64>()
            / 200.0;
        eprintln!("  SVT-S-{name:<10} mean SER = {mean:.3}");
    }
    // And a timing datapoint so criterion records something for the group.
    let alg = AlgorithmSpec::Standard {
        ratio: BudgetRatio::OneToCTwoThirds,
    };
    c.bench_function("ablation/allocation_c23_run", |b| {
        b.iter(|| {
            black_box(
                ctx.run_once_into(&alg, 0.1, &mut rng, &mut scratch)
                    .unwrap(),
            )
        })
    });
}

fn retraversal_increment_utility(c: &mut Criterion) {
    let scores = svt_bench::bench_scores(10_000);
    let sweep = SweepContext::new(&scores);
    let ctx = GroupedContext::new(&sweep, 100);
    let mut rng = DpRng::seed_from_u64(44);
    let mut scratch = RunScratch::new();
    eprintln!("\nablation: mean SER by retraversal increment (n=10k, c=100, eps=0.1, 200 runs)");
    for k in [0.0f64, 1.0, 2.0, 3.0, 4.0, 5.0] {
        let alg = AlgorithmSpec::Retraversal {
            ratio: BudgetRatio::OneToCTwoThirds,
            increment_d: k,
        };
        let mean: f64 = (0..200)
            .map(|_| {
                ctx.run_once_into(&alg, 0.1, &mut rng, &mut scratch)
                    .unwrap()
                    .ser
            })
            .sum::<f64>()
            / 200.0;
        eprintln!("  SVT-ReTr-{k:.0}D mean SER = {mean:.3}");
    }
    let alg = AlgorithmSpec::Retraversal {
        ratio: BudgetRatio::OneToCTwoThirds,
        increment_d: 3.0,
    };
    c.bench_function("ablation/retraversal_3d_run", |b| {
        b.iter(|| {
            black_box(
                ctx.run_once_into(&alg, 0.1, &mut rng, &mut scratch)
                    .unwrap(),
            )
        })
    });
}

criterion_group!(
    benches,
    engines,
    allocation_ratios,
    retraversal_increment_utility
);
criterion_main!(benches);
