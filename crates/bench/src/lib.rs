//! # svt-bench
//!
//! Criterion micro-benchmarks and figure-regeneration benches for the
//! `sparse-vector` workspace. This library crate only hosts shared
//! helpers; the interesting code lives in `benches/`:
//!
//! * `mechanisms` — Laplace/Gumbel sampling, EM selection, discrete
//!   samplers;
//! * `svt` — streaming SVT variants and non-interactive selection;
//! * `selection` — EM peeling vs one-shot Gumbel top-`c` vs
//!   report-noisy-max;
//! * `ablation` — exact vs grouped engine, allocation-ratio sweep,
//!   binomial sampler regimes;
//! * `figures` — `harness = false` scaled-down regeneration of every
//!   paper table/figure, so `cargo bench` reproduces the evaluation.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use dp_data::ScoreVector;

/// A mid-sized synthetic workload for micro-benchmarks: `n` items with
/// power-law scores (deterministic).
pub fn bench_scores(n: usize) -> ScoreVector {
    let v: Vec<f64> = (1..=n as u64)
        .map(|r| (100_000.0 / (r as f64).powf(0.8)).round())
        .collect();
    ScoreVector::new(v).expect("nonempty finite scores")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_scores_shape() {
        let s = bench_scores(100);
        assert_eq!(s.len(), 100);
        assert!(s.as_slice().windows(2).all(|w| w[0] >= w[1]));
    }
}
