//! Deterministic multi-threaded sweep driver.
//!
//! One *cell* is `(dataset, algorithm, c)`; the paper averages each cell
//! over 100 runs with a fresh random item order per run. Each run's
//! generator is derived in `O(1)` from `(cell seed, run index)` — a
//! SplitMix64 mix, no pre-forked generator vector — so `runs` can grow
//! without any per-run memory, and a run's randomness is a pure function
//! of its coordinates. The runner flattens the **whole cell grid** into
//! one task list and splits it across `std::thread::scope` workers — so
//! a sweep keeps every core busy even when individual cells are small,
//! and results are bit-identical regardless of thread count *and* of how
//! tasks are scheduled (each run derives its own generator; outcomes are
//! aggregated in run order per cell).
//!
//! Engines are zero-copy over shared per-dataset state: a
//! [`SweepContext`] (the dataset's one score sort — grouped runs plus
//! the `O(log G)` rank table) is built lazily per [`PreparedDataset`]
//! and borrowed by every `(engine, algorithm, c)` context of the sweep;
//! no context sorts anything of its own. Within a sweep one context per
//! `(engine kind, c)` is shared by every algorithm that needs it, and
//! each worker thread reuses one [`RunScratch`] across all its runs.

use crate::metrics::{MeanStd, MetricSummary};
use crate::simulate::exact::ExactContext;
use crate::simulate::grouped::GroupedContext;
use crate::simulate::{RunOutcome, SweepContext};
use crate::spec::{AlgorithmSpec, ExperimentConfig, SimulationMode};
use dp_data::ScoreVector;
use dp_mechanisms::{counter_seed, DpRng};
use svt_core::streaming::RunScratch;
use svt_core::Result;

/// Aggregated metrics for one `(algorithm, c)` cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellResult {
    /// Legend label of the algorithm.
    pub algorithm: String,
    /// Cutoff `c`.
    pub c: usize,
    /// SER across runs.
    pub ser: MetricSummary,
    /// FNR across runs.
    pub fnr: MetricSummary,
}

/// A dataset prepared for sweeping: the raw scores plus the shared
/// [`SweepContext`] (grouped runs + rank table), computed lazily on
/// first use — one sort per dataset, however many engines, algorithms,
/// and cutoffs a sweep throws at it. The context holds an `Arc`-shared
/// epoch-pinned snapshot, so worker threads thread the *same* snapshot
/// through every cell instead of rebuilding (or re-cloning the tables)
/// per cell.
#[derive(Debug, Clone)]
pub struct PreparedDataset {
    /// Dataset display name.
    pub name: String,
    scores: ScoreVector,
    sweep: std::sync::OnceLock<SweepContext>,
}

impl PreparedDataset {
    /// Prepares a dataset for sweeping.
    pub fn new(name: &str, scores: ScoreVector) -> Self {
        Self {
            name: name.to_owned(),
            scores,
            sweep: std::sync::OnceLock::new(),
        }
    }

    /// The underlying scores.
    pub fn scores(&self) -> &ScoreVector {
        &self.scores
    }

    /// The shared per-dataset sweep state, built (one sort) on first
    /// use and borrowed by every context of every sweep over this
    /// dataset.
    pub fn sweep_context(&self) -> &SweepContext {
        self.sweep.get_or_init(|| SweepContext::new(&self.scores))
    }

    /// Number of distinct score groups (the grouped engine's working
    /// set).
    pub fn n_groups(&self) -> usize {
        self.sweep_context().groups().num_groups()
    }
}

/// Which engine a cell runs on (resolved from mode + algorithm).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum EngineKind {
    Exact,
    Grouped,
}

enum Engine<'a> {
    Exact(ExactContext<'a>),
    Grouped(GroupedContext<'a>),
}

impl Engine<'_> {
    fn run_once(
        &self,
        alg: &AlgorithmSpec,
        epsilon: f64,
        rng: &mut DpRng,
        scratch: &mut RunScratch,
    ) -> Result<RunOutcome> {
        match self {
            Self::Exact(ctx) => ctx.run_once_into(alg, epsilon, rng, scratch),
            Self::Grouped(ctx) => ctx.run_once_into(alg, epsilon, rng, scratch),
        }
    }
}

/// Resolves the engine for a mode. The exact engine remains the `Auto`
/// default (it reads scores straight off the slice with no `O(log G)`
/// per-item resolution); the grouped engine — now an index-level
/// bit-for-bit mirror that supports every algorithm, SVT-DPBook
/// included — is built when explicitly requested as a cross-check.
fn engine_kind(mode: SimulationMode) -> EngineKind {
    match mode {
        SimulationMode::Auto | SimulationMode::Exact => EngineKind::Exact,
        SimulationMode::Grouped => EngineKind::Grouped,
    }
}

fn build_engine<'a>(dataset: &'a PreparedDataset, kind: EngineKind, c: usize) -> Engine<'a> {
    let sweep = dataset.sweep_context();
    match kind {
        EngineKind::Exact => Engine::Exact(ExactContext::new(&dataset.scores, sweep, c)),
        EngineKind::Grouped => Engine::Grouped(GroupedContext::new(sweep, c)),
    }
}

/// The cell-specific master seed every run of a `(algorithm, c)` cell
/// derives from, so cells are independent of one another.
fn cell_seed(config: &ExperimentConfig, alg: &AlgorithmSpec, c: usize) -> u64 {
    config
        .seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(c as u64)
        .wrapping_add(hash_label(&alg.label()))
}

/// SplitMix64 at position `run` of the stream seeded by `cell_seed`:
/// the shared [`counter_seed`] derivation (golden-ratio Weyl increment
/// plus finalizer) jumps to the run's state in `O(1)` and decorrelates
/// consecutive positions. The same derivation seeds
/// `NoiseBuffer`'s per-chunk generators, so one counter-based scheme
/// covers both the per-run and the intra-run parallelism layers.
fn run_rng(cell_seed: u64, run: usize) -> DpRng {
    DpRng::seed_from_u64(counter_seed(cell_seed, run as u64))
}

/// One cell of work for [`execute_grid`]: an engine reference, the
/// algorithm to run, the cell seed, and how many runs to derive from
/// it. A run's generator is `run_rng(seed, run_index)` — `O(1)` state
/// per *cell*, however large `runs` grows.
struct GridCell<'e, 'a> {
    engine: &'e Engine<'a>,
    alg: &'e AlgorithmSpec,
    seed: u64,
    runs: usize,
}

/// Executes every run of every cell across the worker pool and returns
/// the outcomes grouped per cell, in run order.
///
/// The grid is flattened cell-major into one global run-index range and
/// split into contiguous chunks, one per worker; each worker walks its
/// range, deriving every run's generator on the fly from its
/// `(cell seed, run index)` coordinates, and reuses a single
/// [`RunScratch`] across all its runs. Because a run's randomness is a
/// pure function of its coordinates and outcomes are reassembled by
/// position, thread count and scheduling cannot change the result — and
/// nothing is ever allocated per run beyond its outcome.
fn execute_grid(
    cells: Vec<GridCell<'_, '_>>,
    epsilon: f64,
    threads: usize,
) -> Result<Vec<Vec<RunOutcome>>> {
    // Cell-major flattening: cell boundaries as prefix sums over runs.
    let mut starts = Vec::with_capacity(cells.len() + 1);
    let mut total = 0usize;
    for cell in &cells {
        starts.push(total);
        total += cell.runs;
    }
    starts.push(total);

    let threads = threads.clamp(1, total.max(1));
    let chunk_size = total.div_ceil(threads).max(1);
    let chunk_results: Vec<Result<Vec<RunOutcome>>> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        let mut begin = 0usize;
        while begin < total {
            let end = (begin + chunk_size).min(total);
            let cells = &cells;
            let starts = &starts;
            handles.push(scope.spawn(move || {
                let mut scratch = RunScratch::new();
                let mut out = Vec::with_capacity(end - begin);
                // The cell containing the chunk's first global index.
                let mut cell_idx = starts.partition_point(|&s| s <= begin) - 1;
                for global in begin..end {
                    while global >= starts[cell_idx + 1] {
                        cell_idx += 1;
                    }
                    let cell = &cells[cell_idx];
                    let mut rng = run_rng(cell.seed, global - starts[cell_idx]);
                    out.push(
                        cell.engine
                            .run_once(cell.alg, epsilon, &mut rng, &mut scratch)?,
                    );
                }
                Ok(out)
            }));
            begin = end;
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread must not panic"))
            .collect()
    });

    // Reassemble the flattened order (chunks are contiguous), then split
    // back into per-cell groups.
    let mut flat = Vec::with_capacity(total);
    for chunk in chunk_results {
        flat.extend(chunk?);
    }
    let mut grouped = Vec::with_capacity(cells.len());
    let mut rest = flat.into_iter();
    for cell in &cells {
        grouped.push(rest.by_ref().take(cell.runs).collect());
    }
    Ok(grouped)
}

/// Aggregates one cell's outcomes (in run order) into a [`CellResult`].
fn aggregate(alg: &AlgorithmSpec, c: usize, outcomes: &[RunOutcome]) -> CellResult {
    let mut ser = MeanStd::default();
    let mut fnr = MeanStd::default();
    for o in outcomes {
        ser.push(o.ser);
        fnr.push(o.fnr);
    }
    CellResult {
        algorithm: alg.label(),
        c,
        ser: ser.into(),
        fnr: fnr.into(),
    }
}

/// Runs one cell: `runs` independent executions of `alg` at cutoff `c`.
///
/// # Errors
/// Propagates the first per-run error (configuration problems surface on
/// the first run).
pub fn run_cell(
    dataset: &PreparedDataset,
    alg: &AlgorithmSpec,
    c: usize,
    config: &ExperimentConfig,
) -> Result<CellResult> {
    let engine = build_engine(dataset, engine_kind(config.mode), c);
    let outcomes = execute_grid(
        vec![GridCell {
            engine: &engine,
            alg,
            seed: cell_seed(config, alg, c),
            runs: config.runs,
        }],
        config.epsilon,
        config.effective_threads(),
    )?;
    Ok(aggregate(alg, c, &outcomes[0]))
}

/// Runs a full sweep: every algorithm × every `c` on one dataset, with
/// the whole cell grid parallelized across the worker pool.
///
/// Cell results are bit-identical to calling [`run_cell`] per cell (and
/// hence independent of thread count and scheduling): each cell's runs
/// use the same cell-seeded RNGs and are aggregated in the same order.
/// Within a sweep, one engine context per `(engine kind, c)` is shared
/// zero-copy by every algorithm that needs it, and every context
/// borrows the dataset's single [`SweepContext`].
///
/// # Errors
/// Propagates the first per-run error.
pub fn run_sweep(
    dataset: &PreparedDataset,
    algorithms: &[AlgorithmSpec],
    config: &ExperimentConfig,
) -> Result<Vec<CellResult>> {
    // One engine per (kind, c), shared across algorithms.
    let mut engine_index: std::collections::HashMap<(EngineKind, usize), usize> =
        std::collections::HashMap::new();
    let mut engines: Vec<Engine> = Vec::new();
    let mut cell_specs: Vec<(usize, &AlgorithmSpec, usize)> =
        Vec::with_capacity(algorithms.len() * config.c_values.len());
    for alg in algorithms {
        for &c in &config.c_values {
            let kind = engine_kind(config.mode);
            let idx = *engine_index.entry((kind, c)).or_insert_with(|| {
                engines.push(build_engine(dataset, kind, c));
                engines.len() - 1
            });
            cell_specs.push((idx, alg, c));
        }
    }

    let grid: Vec<GridCell> = cell_specs
        .iter()
        .map(|&(engine_idx, alg, c)| GridCell {
            engine: &engines[engine_idx],
            alg,
            seed: cell_seed(config, alg, c),
            runs: config.runs,
        })
        .collect();
    let outcomes = execute_grid(grid, config.epsilon, config.effective_threads())?;
    Ok(cell_specs
        .iter()
        .zip(&outcomes)
        .map(|(&(_, alg, c), cell_outcomes)| aggregate(alg, c, cell_outcomes))
        .collect())
}

/// Stable tiny hash for mixing algorithm labels into cell seeds.
fn hash_label(label: &str) -> u64 {
    // FNV-1a.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_mechanisms::NoiseKernel;
    use svt_core::allocation::BudgetRatio;

    fn toy_dataset() -> PreparedDataset {
        let mut v = vec![];
        for i in 0..80u32 {
            v.push(match i {
                0..=9 => 500.0 - i as f64,
                _ => 20.0,
            });
        }
        PreparedDataset::new("toy", ScoreVector::new(v).unwrap())
    }

    fn toy_config() -> ExperimentConfig {
        ExperimentConfig {
            epsilon: 0.5,
            runs: 24,
            c_values: vec![5, 10],
            seed: 42,
            threads: 3,
            mode: SimulationMode::Auto,
        }
    }

    fn full_lineup() -> [AlgorithmSpec; 6] {
        [
            AlgorithmSpec::DpBook,
            AlgorithmSpec::Standard {
                ratio: BudgetRatio::OneToCTwoThirds,
            },
            AlgorithmSpec::Retraversal {
                ratio: BudgetRatio::OneToCTwoThirds,
                increment_d: 2.0,
            },
            AlgorithmSpec::Em,
            AlgorithmSpec::Revisited {
                ratio: BudgetRatio::OneToCTwoThirds,
            },
            AlgorithmSpec::ExpNoise {
                ratio: BudgetRatio::OneToCTwoThirds,
            },
        ]
    }

    #[test]
    fn cell_aggregates_requested_runs() {
        let data = toy_dataset();
        let alg = AlgorithmSpec::Standard {
            ratio: BudgetRatio::OneToCTwoThirds,
        };
        let cell = run_cell(&data, &alg, 5, &toy_config()).unwrap();
        assert_eq!(cell.ser.runs, 24);
        assert_eq!(cell.fnr.runs, 24);
        assert!(cell.ser.mean >= 0.0 && cell.ser.mean <= 1.0);
        assert_eq!(cell.algorithm, "SVT-S-1:c^(2/3)");
        assert_eq!(cell.c, 5);
    }

    #[test]
    fn results_are_independent_of_thread_count() {
        let data = toy_dataset();
        let alg = AlgorithmSpec::Em;
        let mut cfg1 = toy_config();
        cfg1.threads = 1;
        let mut cfg8 = toy_config();
        cfg8.threads = 8;
        let a = run_cell(&data, &alg, 10, &cfg1).unwrap();
        let b = run_cell(&data, &alg, 10, &cfg8).unwrap();
        assert_eq!(a, b, "thread count changed results");
    }

    #[test]
    fn sweeps_cover_the_grid() {
        let data = toy_dataset();
        let algs = [
            AlgorithmSpec::Standard {
                ratio: BudgetRatio::OneToOne,
            },
            AlgorithmSpec::Em,
        ];
        let results = run_sweep(&data, &algs, &toy_config()).unwrap();
        assert_eq!(results.len(), 4);
        assert!(results.iter().any(|r| r.algorithm == "EM" && r.c == 5));
    }

    #[test]
    fn dpbook_routes_to_exact_engine_in_auto_mode() {
        let data = toy_dataset();
        let cell = run_cell(&data, &AlgorithmSpec::DpBook, 5, &toy_config()).unwrap();
        assert_eq!(cell.ser.runs, 24);
    }

    #[test]
    fn auto_mode_is_exact_mode_for_every_algorithm() {
        // Auto prefers the exact engine everywhere; its results must be
        // bit-identical to forcing Exact.
        let data = toy_dataset();
        let algs = full_lineup();
        let auto_cfg = toy_config();
        let mut exact_cfg = toy_config();
        exact_cfg.mode = SimulationMode::Exact;
        let a = run_sweep(&data, &algs, &auto_cfg).unwrap();
        let b = run_sweep(&data, &algs, &exact_cfg).unwrap();
        assert_eq!(a, b, "Auto must route every algorithm to the exact engine");
    }

    #[test]
    fn sweep_level_exact_and_grouped_engines_are_bit_identical() {
        // The tentpole's sweep-level guarantee: the grouped engine is an
        // index-level mirror consuming identical draws, so a full sweep
        // under either engine — same master seed, every algorithm
        // including SVT-DPBook — produces *equal* cell results, not
        // statistically-close ones. (The per-run index streams are
        // pinned by `exact_and_grouped_index_streams_are_identical`;
        // metric equality follows because both engines score selections
        // through the same shared SweepContext::outcome.)
        let data = toy_dataset();
        let algs = full_lineup();
        let mut exact_cfg = toy_config();
        exact_cfg.mode = SimulationMode::Exact;
        let mut grouped_cfg = toy_config();
        grouped_cfg.mode = SimulationMode::Grouped;
        let exact = run_sweep(&data, &algs, &exact_cfg).unwrap();
        let grouped = run_sweep(&data, &algs, &grouped_cfg).unwrap();
        assert_eq!(exact, grouped, "engines diverged somewhere in the sweep");
    }

    #[test]
    fn exact_and_grouped_index_streams_are_identical() {
        // The satellite contract, pinned at the sweep-runner's own
        // RNG-derivation layer: for every (algorithm, c, run index) of a
        // sweep grid, both engines emit the same *selected index
        // stream* — not just the same metrics — from the run's
        // (cell seed, run index)-derived generator.
        let data = toy_dataset();
        let cfg = toy_config();
        let mut scratch_e = RunScratch::new();
        let mut scratch_g = RunScratch::new();
        for alg in &full_lineup() {
            for &c in &cfg.c_values {
                let exact = build_engine(&data, EngineKind::Exact, c);
                let grouped = build_engine(&data, EngineKind::Grouped, c);
                let seed = cell_seed(&cfg, alg, c);
                for run in 0..cfg.runs {
                    let mut rng_e = run_rng(seed, run);
                    let mut rng_g = run_rng(seed, run);
                    let e = exact
                        .run_once(alg, cfg.epsilon, &mut rng_e, &mut scratch_e)
                        .unwrap();
                    let g = grouped
                        .run_once(alg, cfg.epsilon, &mut rng_g, &mut scratch_g)
                        .unwrap();
                    assert_eq!(
                        scratch_e.selected(),
                        scratch_g.selected(),
                        "{alg:?} c={c} run={run}: index streams diverged"
                    );
                    assert_eq!(e, g, "{alg:?} c={c} run={run}");
                }
            }
        }
    }

    #[test]
    fn exact_and_grouped_index_streams_are_identical_under_reference_kernel() {
        // The worker default (`RunScratch::new`) runs the vectorized
        // kernel, so the mirror test above pins that path; this variant
        // pins the same contract under the reference kernel, proving
        // the Exact ≡ Grouped equality is kernel-independent — both
        // engines consume whichever kernel the scratch carries.
        let data = toy_dataset();
        let cfg = toy_config();
        let mut scratch_e = RunScratch::with_kernel(
            dp_mechanisms::NoiseBuffer::DEFAULT_BATCH,
            NoiseKernel::Reference,
        );
        let mut scratch_g = RunScratch::with_kernel(
            dp_mechanisms::NoiseBuffer::DEFAULT_BATCH,
            NoiseKernel::Reference,
        );
        for alg in &full_lineup() {
            let c = cfg.c_values[0];
            let exact = build_engine(&data, EngineKind::Exact, c);
            let grouped = build_engine(&data, EngineKind::Grouped, c);
            let seed = cell_seed(&cfg, alg, c);
            for run in 0..cfg.runs {
                let mut rng_e = run_rng(seed, run);
                let mut rng_g = run_rng(seed, run);
                exact
                    .run_once(alg, cfg.epsilon, &mut rng_e, &mut scratch_e)
                    .unwrap();
                grouped
                    .run_once(alg, cfg.epsilon, &mut rng_g, &mut scratch_g)
                    .unwrap();
                assert_eq!(
                    scratch_e.selected(),
                    scratch_g.selected(),
                    "{alg:?} c={c} run={run}: reference-kernel streams diverged"
                );
            }
        }
    }

    #[test]
    fn run_rng_is_the_shared_counter_derivation() {
        // The refactor onto `counter_seed` must not move any run's
        // generator: pin the derivation against the original inline
        // SplitMix64 step.
        for (seed, run) in [(42u64, 0usize), (42, 7), (0xdead_beef, 99), (u64::MAX, 3)] {
            let mut z = seed.wrapping_add((run as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15));
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            let expected = DpRng::seed_from_u64(z ^ (z >> 31)).next_u64();
            assert_eq!(
                run_rng(seed, run).next_u64(),
                expected,
                "seed={seed} run={run}"
            );
        }
    }

    #[test]
    fn grouped_mode_runs_dpbook() {
        // The index-level grouped engine handles the per-⊤ threshold
        // refresh the old aggregate engine had to refuse.
        let data = toy_dataset();
        let mut cfg = toy_config();
        cfg.mode = SimulationMode::Grouped;
        let cell = run_cell(&data, &AlgorithmSpec::DpBook, 5, &cfg).unwrap();
        assert_eq!(cell.ser.runs, 24);
    }

    #[test]
    fn exact_mode_forces_exact_everywhere() {
        let data = toy_dataset();
        let mut cfg = toy_config();
        cfg.mode = SimulationMode::Exact;
        let alg = AlgorithmSpec::Standard {
            ratio: BudgetRatio::OneToOne,
        };
        let cell = run_cell(&data, &alg, 5, &cfg).unwrap();
        assert_eq!(cell.ser.runs, 24);
    }

    #[test]
    fn growing_runs_preserves_the_outcome_prefix() {
        // The O(1) (cell seed, run index) derivation makes every run's
        // randomness a pure function of its coordinates: asking for more
        // runs must extend the sequence, not reshuffle it (the pre-fork
        // design kept this property via sequential forking; the counter
        // design keeps it by construction, without per-run memory).
        let data = toy_dataset();
        let alg = AlgorithmSpec::Em;
        let engine = build_engine(&data, EngineKind::Exact, 5);
        let cfg = toy_config();
        let seed = cell_seed(&cfg, &alg, 5);
        let outcomes = |runs: usize| {
            execute_grid(
                vec![GridCell {
                    engine: &engine,
                    alg: &alg,
                    seed,
                    runs,
                }],
                cfg.epsilon,
                3,
            )
            .unwrap()
            .remove(0)
        };
        let short = outcomes(10);
        let long = outcomes(25);
        assert_eq!(short[..], long[..10], "prefix changed when runs grew");
    }

    #[test]
    fn growing_c_within_one_sweep_context_keeps_the_top_prefix() {
        // The shared SweepContext hands every c the same sorted order:
        // contexts at growing c see nested true-top prefixes (per-c
        // top-k sorts gave no such cross-c guarantee), so a sweep's
        // cells at different cutoffs are measured against consistent
        // ground truth.
        let data = toy_dataset();
        let sweep = data.sweep_context();
        let widest = sweep.true_top(80).to_vec();
        for c in [1usize, 5, 10, 40, 80] {
            assert_eq!(sweep.true_top(c), &widest[..c], "c={c}");
            let ctx = ExactContext::new(data.scores(), sweep, c);
            assert_eq!(
                ctx.true_top(),
                &widest[..c].iter().map(|&i| i as usize).collect::<Vec<_>>()[..],
                "context at c={c} disagrees with the shared prefix"
            );
        }
    }

    #[test]
    fn different_seeds_change_results() {
        let data = toy_dataset();
        let alg = AlgorithmSpec::Standard {
            ratio: BudgetRatio::OneToOne,
        };
        let mut cfg_b = toy_config();
        cfg_b.seed = 43;
        let a = run_cell(&data, &alg, 5, &toy_config()).unwrap();
        let b = run_cell(&data, &alg, 5, &cfg_b).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn sweep_equals_per_cell_execution() {
        // The cell-grid-parallel sweep must be bit-identical to running
        // every cell on its own: same cell-seeded RNGs, same run-order
        // aggregation — scheduling cannot change results.
        let data = toy_dataset();
        let algs = [
            AlgorithmSpec::DpBook,
            AlgorithmSpec::Standard {
                ratio: BudgetRatio::OneToCTwoThirds,
            },
            AlgorithmSpec::Em,
        ];
        let cfg = toy_config();
        let sweep = run_sweep(&data, &algs, &cfg).unwrap();
        let mut per_cell = Vec::new();
        for alg in &algs {
            for &c in &cfg.c_values {
                per_cell.push(run_cell(&data, alg, c, &cfg).unwrap());
            }
        }
        assert_eq!(sweep, per_cell);
    }

    #[test]
    fn sweep_is_independent_of_thread_count() {
        let data = toy_dataset();
        let algs = [
            AlgorithmSpec::Standard {
                ratio: BudgetRatio::OneToOne,
            },
            AlgorithmSpec::Retraversal {
                ratio: BudgetRatio::OneToCTwoThirds,
                increment_d: 2.0,
            },
        ];
        let mut one = toy_config();
        one.threads = 1;
        let mut many = toy_config();
        many.threads = 13;
        let a = run_sweep(&data, &algs, &one).unwrap();
        let b = run_sweep(&data, &algs, &many).unwrap();
        assert_eq!(a, b, "thread count changed sweep results");
    }

    #[test]
    fn prepared_dataset_reports_group_count() {
        let data = toy_dataset();
        assert_eq!(data.n_groups(), 11); // 10 distinct head scores + tail
    }
}
