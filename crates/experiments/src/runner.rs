//! Deterministic multi-threaded sweep driver.
//!
//! One *cell* is `(dataset, algorithm, c)`; the paper averages each cell
//! over 100 runs with a fresh random item order per run. The runner
//! pre-forks one RNG per run from the master seed, so results are
//! bit-identical regardless of thread count, then splits the runs
//! across `std::thread::scope` workers.

use crate::metrics::{MeanStd, MetricSummary};
use crate::simulate::exact::ExactContext;
use crate::simulate::grouped::GroupedContext;
use crate::simulate::RunOutcome;
use crate::spec::{AlgorithmSpec, ExperimentConfig, SimulationMode};
use dp_data::ScoreVector;
use dp_mechanisms::DpRng;
use svt_core::Result;

/// Aggregated metrics for one `(algorithm, c)` cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellResult {
    /// Legend label of the algorithm.
    pub algorithm: String,
    /// Cutoff `c`.
    pub c: usize,
    /// SER across runs.
    pub ser: MetricSummary,
    /// FNR across runs.
    pub fnr: MetricSummary,
}

/// A dataset prepared for sweeping: the raw scores plus the compact
/// grouped form (computed once — grouping AOL's 2.29M items is the
/// expensive part).
#[derive(Debug, Clone)]
pub struct PreparedDataset {
    /// Dataset display name.
    pub name: String,
    scores: ScoreVector,
    grouped: Vec<(f64, u64)>,
}

impl PreparedDataset {
    /// Prepares a dataset for sweeping.
    pub fn new(name: &str, scores: ScoreVector) -> Self {
        let grouped = scores.grouped();
        Self {
            name: name.to_owned(),
            scores,
            grouped,
        }
    }

    /// The underlying scores.
    pub fn scores(&self) -> &ScoreVector {
        &self.scores
    }

    /// Number of distinct score groups (the grouped engine's working
    /// set).
    pub fn n_groups(&self) -> usize {
        self.grouped.len()
    }
}

enum Engine {
    Exact(Box<ExactContext>),
    Grouped(Box<GroupedContext>),
}

impl Engine {
    fn run_once(&self, alg: &AlgorithmSpec, epsilon: f64, rng: &mut DpRng) -> Result<RunOutcome> {
        match self {
            Self::Exact(ctx) => ctx.run_once(alg, epsilon, rng),
            Self::Grouped(ctx) => ctx.run_once(alg, epsilon, rng),
        }
    }
}

fn pick_engine(
    dataset: &PreparedDataset,
    alg: &AlgorithmSpec,
    c: usize,
    mode: SimulationMode,
) -> Engine {
    let needs_exact = matches!(alg, AlgorithmSpec::DpBook);
    match (mode, needs_exact) {
        (SimulationMode::Exact, _) | (SimulationMode::Auto, true) => {
            Engine::Exact(Box::new(ExactContext::new(&dataset.scores, c)))
        }
        (SimulationMode::Grouped, true) => {
            // Caller asked for an impossible combination; the grouped
            // context will return a descriptive error per run, so build
            // it anyway.
            Engine::Grouped(Box::new(GroupedContext::from_groups(&dataset.grouped, c)))
        }
        _ => Engine::Grouped(Box::new(GroupedContext::from_groups(&dataset.grouped, c))),
    }
}

/// Runs one cell: `runs` independent executions of `alg` at cutoff `c`.
///
/// # Errors
/// Propagates the first per-run error (configuration problems surface on
/// the first run).
pub fn run_cell(
    dataset: &PreparedDataset,
    alg: &AlgorithmSpec,
    c: usize,
    config: &ExperimentConfig,
) -> Result<CellResult> {
    let engine = pick_engine(dataset, alg, c, config.mode);
    // Pre-fork per-run RNGs from a cell-specific master so cells are
    // independent and the thread count cannot change results.
    let mut master = DpRng::seed_from_u64(
        config
            .seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(c as u64)
            .wrapping_add(hash_label(&alg.label())),
    );
    let mut rngs: Vec<DpRng> = (0..config.runs).map(|_| master.fork()).collect();

    let threads = config.effective_threads().min(config.runs.max(1));
    let chunk = config.runs.div_ceil(threads.max(1));
    let engine_ref = &engine;
    let outcomes: Vec<Result<Vec<RunOutcome>>> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        let mut chunks: Vec<Vec<DpRng>> = Vec::new();
        while !rngs.is_empty() {
            let take = chunk.min(rngs.len());
            chunks.push(rngs.drain(..take).collect());
        }
        for mut chunk_rngs in chunks {
            handles.push(scope.spawn(move || {
                let mut out = Vec::with_capacity(chunk_rngs.len());
                for rng in &mut chunk_rngs {
                    out.push(engine_ref.run_once(alg, config.epsilon, rng)?);
                }
                Ok(out)
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread must not panic"))
            .collect()
    });

    let mut ser = MeanStd::default();
    let mut fnr = MeanStd::default();
    for chunk in outcomes {
        for o in chunk? {
            ser.push(o.ser);
            fnr.push(o.fnr);
        }
    }
    Ok(CellResult {
        algorithm: alg.label(),
        c,
        ser: ser.into(),
        fnr: fnr.into(),
    })
}

/// Runs a full sweep: every algorithm × every `c` on one dataset.
///
/// # Errors
/// Propagates the first cell error.
pub fn run_sweep(
    dataset: &PreparedDataset,
    algorithms: &[AlgorithmSpec],
    config: &ExperimentConfig,
) -> Result<Vec<CellResult>> {
    let mut out = Vec::with_capacity(algorithms.len() * config.c_values.len());
    for alg in algorithms {
        for &c in &config.c_values {
            out.push(run_cell(dataset, alg, c, config)?);
        }
    }
    Ok(out)
}

/// Stable tiny hash for mixing algorithm labels into cell seeds.
fn hash_label(label: &str) -> u64 {
    // FNV-1a.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use svt_core::allocation::BudgetRatio;

    fn toy_dataset() -> PreparedDataset {
        let mut v = vec![];
        for i in 0..80u32 {
            v.push(match i {
                0..=9 => 500.0 - i as f64,
                _ => 20.0,
            });
        }
        PreparedDataset::new("toy", ScoreVector::new(v).unwrap())
    }

    fn toy_config() -> ExperimentConfig {
        ExperimentConfig {
            epsilon: 0.5,
            runs: 24,
            c_values: vec![5, 10],
            seed: 42,
            threads: 3,
            mode: SimulationMode::Auto,
        }
    }

    #[test]
    fn cell_aggregates_requested_runs() {
        let data = toy_dataset();
        let alg = AlgorithmSpec::Standard {
            ratio: BudgetRatio::OneToCTwoThirds,
        };
        let cell = run_cell(&data, &alg, 5, &toy_config()).unwrap();
        assert_eq!(cell.ser.runs, 24);
        assert_eq!(cell.fnr.runs, 24);
        assert!(cell.ser.mean >= 0.0 && cell.ser.mean <= 1.0);
        assert_eq!(cell.algorithm, "SVT-S-1:c^(2/3)");
        assert_eq!(cell.c, 5);
    }

    #[test]
    fn results_are_independent_of_thread_count() {
        let data = toy_dataset();
        let alg = AlgorithmSpec::Em;
        let mut cfg1 = toy_config();
        cfg1.threads = 1;
        let mut cfg8 = toy_config();
        cfg8.threads = 8;
        let a = run_cell(&data, &alg, 10, &cfg1).unwrap();
        let b = run_cell(&data, &alg, 10, &cfg8).unwrap();
        assert_eq!(a, b, "thread count changed results");
    }

    #[test]
    fn sweeps_cover_the_grid() {
        let data = toy_dataset();
        let algs = [
            AlgorithmSpec::Standard {
                ratio: BudgetRatio::OneToOne,
            },
            AlgorithmSpec::Em,
        ];
        let results = run_sweep(&data, &algs, &toy_config()).unwrap();
        assert_eq!(results.len(), 4);
        assert!(results.iter().any(|r| r.algorithm == "EM" && r.c == 5));
    }

    #[test]
    fn dpbook_routes_to_exact_engine_in_auto_mode() {
        let data = toy_dataset();
        let cell = run_cell(&data, &AlgorithmSpec::DpBook, 5, &toy_config()).unwrap();
        assert_eq!(cell.ser.runs, 24);
    }

    #[test]
    fn grouped_mode_rejects_dpbook() {
        let data = toy_dataset();
        let mut cfg = toy_config();
        cfg.mode = SimulationMode::Grouped;
        assert!(run_cell(&data, &AlgorithmSpec::DpBook, 5, &cfg).is_err());
    }

    #[test]
    fn exact_mode_forces_exact_everywhere() {
        let data = toy_dataset();
        let mut cfg = toy_config();
        cfg.mode = SimulationMode::Exact;
        let alg = AlgorithmSpec::Standard {
            ratio: BudgetRatio::OneToOne,
        };
        let cell = run_cell(&data, &alg, 5, &cfg).unwrap();
        assert_eq!(cell.ser.runs, 24);
    }

    #[test]
    fn different_seeds_change_results() {
        let data = toy_dataset();
        let alg = AlgorithmSpec::Standard {
            ratio: BudgetRatio::OneToOne,
        };
        let mut cfg_b = toy_config();
        cfg_b.seed = 43;
        let a = run_cell(&data, &alg, 5, &toy_config()).unwrap();
        let b = run_cell(&data, &alg, 5, &cfg_b).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn prepared_dataset_reports_group_count() {
        let data = toy_dataset();
        assert_eq!(data.n_groups(), 11); // 10 distinct head scores + tail
    }
}
