//! §6's utility measures: False Negative Rate and Score Error Rate.
//!
//! * **FNR** — "the fraction of true top-c queries that are missed".
//! * **SER** — "the ratio of missed scores by selecting S instead of the
//!   true top c queries": `SER = 1 − avgScore(S)/avgScore(Topc)`.
//!
//! Convention for short selections (an SVT pass can return fewer than
//! `c` items): `avgScore(S)` divides by `c`, so missing selections
//! contribute zero score — which makes the two `c`s cancel and
//! `SER = 1 − ΣS/ΣTopc`. Selections can never out-score the exact
//! top-`c`, so both metrics live in `[0, 1]`.

/// False Negative Rate: `|Topc \ S| / |Topc|`.
///
/// `selected` and `true_top` are index sets (order irrelevant;
/// duplicates in `selected` are ignored).
pub fn false_negative_rate(selected: &[usize], true_top: &[usize]) -> f64 {
    if true_top.is_empty() {
        return 0.0;
    }
    let chosen: std::collections::HashSet<usize> = selected.iter().copied().collect();
    let missed = true_top.iter().filter(|i| !chosen.contains(i)).count();
    missed as f64 / true_top.len() as f64
}

/// Score Error Rate: `1 − ΣS / ΣTopc` (see module docs for the
/// short-selection convention).
pub fn score_error_rate(selected: &[usize], true_top: &[usize], scores: &[f64]) -> f64 {
    let top_sum: f64 = true_top.iter().map(|&i| scores[i]).sum();
    if top_sum <= 0.0 {
        return 0.0;
    }
    let sel_sum: f64 = selected.iter().map(|&i| scores[i]).sum();
    (1.0 - sel_sum / top_sum).clamp(0.0, 1.0)
}

/// Streaming mean/standard-deviation accumulator (Welford).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MeanStd {
    n: u64,
    mean: f64,
    m2: f64,
}

impl MeanStd {
    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population standard deviation (the paper reports spread across a
    /// fixed set of 100 runs).
    pub fn std_dev(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            (self.m2 / self.n as f64).sqrt()
        }
    }

    /// Merges another accumulator (parallel reduction).
    pub fn merge(&mut self, other: &MeanStd) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let total = self.n + other.n;
        let delta = other.mean - self.mean;
        self.m2 += other.m2 + delta * delta * (self.n as f64 * other.n as f64) / total as f64;
        self.mean += delta * other.n as f64 / total as f64;
        self.n = total;
    }
}

/// Mean ± std summary of one metric over an experiment's runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricSummary {
    /// Mean across runs.
    pub mean: f64,
    /// Standard deviation across runs.
    pub std_dev: f64,
    /// Number of runs.
    pub runs: u64,
}

impl From<MeanStd> for MetricSummary {
    fn from(acc: MeanStd) -> Self {
        Self {
            mean: acc.mean(),
            std_dev: acc.std_dev(),
            runs: acc.count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnr_counts_missed_top_items() {
        let top = [0, 1, 2, 3];
        assert_eq!(false_negative_rate(&[0, 1, 2, 3], &top), 0.0);
        assert_eq!(false_negative_rate(&[0, 1], &top), 0.5);
        assert_eq!(false_negative_rate(&[9, 8], &top), 1.0);
        assert_eq!(false_negative_rate(&[], &top), 1.0);
        assert_eq!(false_negative_rate(&[1], &[]), 0.0);
        // Extra selections don't reduce FNR below the missed fraction.
        assert_eq!(false_negative_rate(&[0, 9, 8, 7], &top), 0.75);
    }

    #[test]
    fn ser_is_one_minus_score_ratio() {
        let scores = [10.0, 8.0, 6.0, 1.0, 1.0];
        let top = [0, 1]; // sum 18
        assert!((score_error_rate(&[0, 1], &top, &scores) - 0.0).abs() < 1e-12);
        // Selecting items 2 and 3: sum 7 → SER = 1 − 7/18.
        let got = score_error_rate(&[2, 3], &top, &scores);
        assert!((got - (1.0 - 7.0 / 18.0)).abs() < 1e-12);
        // Short selection penalized: {0} → 1 − 10/18.
        let got = score_error_rate(&[0], &top, &scores);
        assert!((got - (1.0 - 10.0 / 18.0)).abs() < 1e-12);
        // Empty selection → SER 1.
        assert!((score_error_rate(&[], &top, &scores) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn welford_matches_two_pass() {
        let xs = [0.3, 0.7, 0.1, 0.9, 0.5, 0.5];
        let mut acc = MeanStd::default();
        for &x in &xs {
            acc.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        assert!((acc.mean() - mean).abs() < 1e-12);
        assert!((acc.std_dev() - var.sqrt()).abs() < 1e-12);
        assert_eq!(acc.count(), 6);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut whole = MeanStd::default();
        for &x in &xs {
            whole.push(x);
        }
        let mut left = MeanStd::default();
        let mut right = MeanStd::default();
        for &x in &xs[..37] {
            left.push(x);
        }
        for &x in &xs[37..] {
            right.push(x);
        }
        left.merge(&right);
        assert!((left.mean() - whole.mean()).abs() < 1e-12);
        assert!((left.std_dev() - whole.std_dev()).abs() < 1e-12);
        assert_eq!(left.count(), whole.count());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = MeanStd::default();
        a.push(1.0);
        a.push(3.0);
        let before = a;
        a.merge(&MeanStd::default());
        assert_eq!(a, before);
        let mut empty = MeanStd::default();
        empty.merge(&before);
        assert_eq!(empty, before);
    }
}
