//! Experiment configuration: the paper's evaluation grid and the
//! algorithms it compares (Table 2).

use svt_core::allocation::BudgetRatio;

/// One algorithm series from the evaluation (a line in Fig. 4 or 5).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AlgorithmSpec {
    /// `SVT-DPBook` — Algorithm 2 (interactive baseline).
    DpBook,
    /// `SVT-S-<ratio>` — the standard SVT (Alg. 7, monotonic counting
    /// mode) under a §4.2 allocation policy.
    Standard {
        /// Budget allocation policy.
        ratio: BudgetRatio,
    },
    /// `SVT-ReTr-<ratio>-kD` — standard SVT with the threshold raised by
    /// `k` query-noise standard deviations and retraversal (§5).
    Retraversal {
        /// Budget allocation policy.
        ratio: BudgetRatio,
        /// Threshold increment in noise standard deviations (1–5 in the
        /// paper).
        increment_d: f64,
    },
    /// `EM` — Exponential Mechanism peeling with per-round budget `ε/c`.
    Em,
    /// `SVT-RV-<ratio>` — SVT-Revisited (arXiv:2010.00917): `c` chained
    /// cutoff-1 instances, budget charged only on ⊤ answers.
    Revisited {
        /// Budget allocation policy (applied per instance).
        ratio: BudgetRatio,
    },
    /// `SVT-Exp-<ratio>` — exponential-noise SVT (arXiv:2407.20068):
    /// Algorithm 7's ⊤/⊥ phase with one-sided `Exp` noise at the
    /// Laplace scales.
    ExpNoise {
        /// Budget allocation policy.
        ratio: BudgetRatio,
    },
}

impl AlgorithmSpec {
    /// Legend label matching the paper's figures.
    pub fn label(&self) -> String {
        match self {
            Self::DpBook => "SVT-DPBook".to_owned(),
            Self::Standard { ratio } => format!("SVT-S-{}", ratio.label()),
            Self::Retraversal { ratio, increment_d } => {
                format!("SVT-ReTr-{}-{increment_d:.0}D", ratio.label())
            }
            Self::Em => "EM".to_owned(),
            Self::Revisited { ratio } => format!("SVT-RV-{}", ratio.label()),
            Self::ExpNoise { ratio } => format!("SVT-Exp-{}", ratio.label()),
        }
    }

    /// The Figure 4 line-up (interactive setting).
    pub fn figure4_lineup() -> Vec<Self> {
        vec![
            Self::DpBook,
            Self::Standard {
                ratio: BudgetRatio::OneToOne,
            },
            Self::Standard {
                ratio: BudgetRatio::OneToThree,
            },
            Self::Standard {
                ratio: BudgetRatio::OneToC,
            },
            Self::Standard {
                ratio: BudgetRatio::OneToCTwoThirds,
            },
        ]
    }

    /// The Figure 5 line-up (non-interactive setting).
    pub fn figure5_lineup() -> Vec<Self> {
        let mut v = vec![Self::Standard {
            ratio: BudgetRatio::OneToCTwoThirds,
        }];
        for k in 1..=5 {
            v.push(Self::Retraversal {
                ratio: BudgetRatio::OneToCTwoThirds,
                increment_d: k as f64,
            });
        }
        v.push(Self::Em);
        v
    }
}

/// Which simulation engine to use for a sweep.
///
/// Both engines execute the same draw protocol over the dataset's
/// shared `SweepContext` and emit **bit-identical index streams** for
/// every algorithm; they differ only in how an examined item's score
/// is resolved. `Auto` runs the exact engine (direct slice reads — no
/// `O(log G)` per-item group resolution, so it is the faster of the
/// two mirrors); the grouped engine is the *explicit* cross-check: it
/// derives every score through the sort-derived grouped runs and the
/// inverse rank table, so any divergence between the two data paths
/// fails the runner's sweep-level equality tests selection-by-
/// selection rather than hiding inside statistical tolerance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimulationMode {
    /// The default policy: currently identical to [`Exact`](Self::Exact)
    /// for every algorithm (the exact engine is both faithful and the
    /// fastest).
    Auto,
    /// Force the faithful per-query traversal everywhere.
    Exact,
    /// Force the grouped bit-level mirror engine (supports every
    /// algorithm, SVT-DPBook included, since the index-level traversal
    /// handles its per-⊤ threshold refresh naturally).
    Grouped,
}

/// A full experiment configuration (one Figure-4/5 style sweep).
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentConfig {
    /// Total privacy budget per selection task (the paper fixes 0.1).
    pub epsilon: f64,
    /// Independent runs per cell (the paper uses 100).
    pub runs: usize,
    /// The cutoff grid (the paper sweeps 25..=300 step 25).
    pub c_values: Vec<usize>,
    /// Master seed; everything downstream forks from it.
    pub seed: u64,
    /// Worker threads (0 = available parallelism).
    pub threads: usize,
    /// Simulation engine policy.
    pub mode: SimulationMode,
}

impl ExperimentConfig {
    /// The paper's full grid.
    pub fn paper() -> Self {
        Self {
            epsilon: 0.1,
            runs: 100,
            c_values: (1..=12).map(|i| i * 25).collect(),
            seed: 0x5f_37_59_df,
            threads: 0,
            mode: SimulationMode::Auto,
        }
    }

    /// A scaled-down grid for smoke tests and `cargo bench` figure
    /// regeneration (3 c-values, 10 runs).
    pub fn quick() -> Self {
        Self {
            runs: 10,
            c_values: vec![25, 100, 300],
            ..Self::paper()
        }
    }

    /// Resolved worker-thread count.
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_legends() {
        assert_eq!(AlgorithmSpec::DpBook.label(), "SVT-DPBook");
        assert_eq!(
            AlgorithmSpec::Standard {
                ratio: BudgetRatio::OneToCTwoThirds
            }
            .label(),
            "SVT-S-1:c^(2/3)"
        );
        assert_eq!(
            AlgorithmSpec::Retraversal {
                ratio: BudgetRatio::OneToCTwoThirds,
                increment_d: 3.0
            }
            .label(),
            "SVT-ReTr-1:c^(2/3)-3D"
        );
        assert_eq!(AlgorithmSpec::Em.label(), "EM");
        assert_eq!(
            AlgorithmSpec::Revisited {
                ratio: BudgetRatio::OneToOne
            }
            .label(),
            "SVT-RV-1:1"
        );
        assert_eq!(
            AlgorithmSpec::ExpNoise {
                ratio: BudgetRatio::OneToCTwoThirds
            }
            .label(),
            "SVT-Exp-1:c^(2/3)"
        );
    }

    #[test]
    fn figure4_lineup_matches_paper() {
        let labels: Vec<String> = AlgorithmSpec::figure4_lineup()
            .iter()
            .map(AlgorithmSpec::label)
            .collect();
        assert_eq!(
            labels,
            vec![
                "SVT-DPBook",
                "SVT-S-1:1",
                "SVT-S-1:3",
                "SVT-S-1:c",
                "SVT-S-1:c^(2/3)",
            ]
        );
    }

    #[test]
    fn figure5_lineup_matches_paper() {
        let labels: Vec<String> = AlgorithmSpec::figure5_lineup()
            .iter()
            .map(AlgorithmSpec::label)
            .collect();
        assert_eq!(labels.len(), 7);
        assert_eq!(labels[0], "SVT-S-1:c^(2/3)");
        assert_eq!(labels[1], "SVT-ReTr-1:c^(2/3)-1D");
        assert_eq!(labels[5], "SVT-ReTr-1:c^(2/3)-5D");
        assert_eq!(labels[6], "EM");
    }

    #[test]
    fn paper_grid_is_the_published_one() {
        let cfg = ExperimentConfig::paper();
        assert_eq!(cfg.epsilon, 0.1);
        assert_eq!(cfg.runs, 100);
        assert_eq!(cfg.c_values.first(), Some(&25));
        assert_eq!(cfg.c_values.last(), Some(&300));
        assert_eq!(cfg.c_values.len(), 12);
        assert!(cfg.effective_threads() >= 1);
    }

    #[test]
    fn quick_grid_is_a_subset() {
        let cfg = ExperimentConfig::quick();
        assert!(cfg.runs < ExperimentConfig::paper().runs);
        for c in &cfg.c_values {
            assert!(ExperimentConfig::paper().c_values.contains(c));
        }
    }
}
