//! Builders for every table and figure in the paper.
//!
//! | Builder | Paper artifact |
//! |---|---|
//! | [`table1`] | Table 1 — dataset characteristics |
//! | [`table2`] | Table 2 — algorithm summary |
//! | [`figure2_table`] | Figure 2 — variant differences & privacy |
//! | [`figure3`] | Figure 3 — top-300 score distributions |
//! | [`figure4`] | Figure 4 — interactive comparison (SER & FNR) |
//! | [`figure5`] | Figure 5 — non-interactive comparison (SER & FNR) |
//! | [`alpha_table`] | §5 — α_SVT vs α_EM bounds |
//! | [`nonprivacy_table`] | Thm 3/6/7 + §3.3 — audit measurements |

use crate::report::{mean_pm_std, Table};
use crate::runner::{run_sweep, CellResult, PreparedDataset};
use crate::spec::{AlgorithmSpec, ExperimentConfig};
use dp_auditor::counterexamples as cx;
use dp_data::DatasetSpec;
use dp_mechanisms::DpRng;
use svt_core::Result;

/// Prepares all four Table-1 workloads for sweeping (AOL's 2.29M items
/// make this take a couple of seconds; reuse the result).
pub fn prepare_all_datasets() -> Vec<PreparedDataset> {
    DatasetSpec::all()
        .into_iter()
        .map(|spec| PreparedDataset::new(spec.name, spec.scores()))
        .collect()
}

/// Table 1: dataset characteristics.
pub fn table1() -> Table {
    let mut t = Table::new(
        "Table 1: Dataset characteristics",
        vec![
            "Dataset".into(),
            "Number of Records".into(),
            "Number of Items".into(),
            "Source in this reproduction".into(),
        ],
    );
    for spec in DatasetSpec::all() {
        let source = match spec.name {
            "Zipf" => "exact §6 construction (score_i ∝ 1/i)",
            _ => "calibrated Zipf-Mandelbrot stand-in",
        };
        t.push_row(vec![
            spec.name.into(),
            format_thousands(spec.n_records),
            format_thousands(spec.n_items as u64),
            source.into(),
        ]);
    }
    t
}

/// Table 2: summary of the evaluated algorithms.
pub fn table2() -> Table {
    let mut t = Table::new(
        "Table 2: Summary of algorithms",
        vec!["Setting".into(), "Method".into(), "Description".into()],
    );
    t.push_row(vec![
        "Interactive".into(),
        "SVT-DPBook".into(),
        "DPBook SVT (Alg. 2)".into(),
    ]);
    t.push_row(vec![
        "Interactive".into(),
        "SVT-S".into(),
        "Standard SVT (Alg. 7)".into(),
    ]);
    t.push_row(vec![
        "Non-interactive".into(),
        "SVT-ReTr".into(),
        "Standard SVT with Retraversal".into(),
    ]);
    t.push_row(vec![
        "Non-interactive".into(),
        "EM".into(),
        "Exponential Mechanism".into(),
    ]);
    t
}

/// Figure 2: the variant-difference table, with noise scales evaluated
/// at a concrete `(ε, c)` for orientation.
pub fn figure2_table(epsilon: f64, c: usize) -> Table {
    let mut t = Table::new(
        format!(
            "Figure 2: Differences among Algorithms 1-6 (evaluated at ε={epsilon}, c={c}, Δ=1)"
        ),
        vec![
            "Property".into(),
            "Alg. 1".into(),
            "Alg. 2".into(),
            "Alg. 3".into(),
            "Alg. 4".into(),
            "Alg. 5".into(),
            "Alg. 6".into(),
        ],
    );
    let rows = svt_core::catalog::figure2();
    let collect = |f: &dyn Fn(&svt_core::catalog::VariantProperties) -> String| -> Vec<String> {
        rows.iter().map(f).collect()
    };
    let with_label = |label: &str, mut cells: Vec<String>| -> Vec<String> {
        let mut row = vec![label.to_owned()];
        row.append(&mut cells);
        row
    };
    t.push_row(with_label(
        "ε1",
        collect(&|r| {
            if (r.eps1_fraction - 0.25).abs() < 1e-12 {
                "ε/4".into()
            } else {
                "ε/2".into()
            }
        }),
    ));
    t.push_row(with_label(
        "Scale of threshold noise ρ",
        collect(&|r| r.threshold_noise.symbol().into()),
    ));
    t.push_row(with_label(
        "Reset ρ after each ⊤ (unnecessary)",
        collect(&|r| if r.resets_threshold_noise { "Yes" } else { "" }.into()),
    ));
    t.push_row(with_label(
        "Scale of query noise ν",
        collect(&|r| r.query_noise.symbol().into()),
    ));
    t.push_row(with_label(
        "Outputting q+ν instead of ⊤ (not private)",
        collect(&|r| if r.outputs_noisy_answer { "Yes" } else { "" }.into()),
    ));
    t.push_row(with_label(
        "Outputting unbounded ⊤'s (not private)",
        collect(&|r| if r.unbounded_positives { "Yes" } else { "" }.into()),
    ));
    t.push_row(with_label(
        "Privacy property",
        collect(&|r| r.privacy.render(c)),
    ));
    let eps1 = |r: &svt_core::catalog::VariantProperties| epsilon * r.eps1_fraction;
    t.push_row(with_label(
        "ρ scale (numeric)",
        collect(&|r| {
            format!(
                "{:.1}",
                r.threshold_noise
                    .evaluate(eps1(r), epsilon - eps1(r), 1.0, c)
            )
        }),
    ));
    t.push_row(with_label(
        "ν scale (numeric)",
        collect(&|r| {
            format!(
                "{:.1}",
                r.query_noise.evaluate(eps1(r), epsilon - eps1(r), 1.0, c)
            )
        }),
    ));
    t
}

/// Figure 3: the distribution of the `max_rank` highest scores of each
/// dataset, sampled at (roughly) log-spaced ranks.
pub fn figure3(max_rank: usize) -> Table {
    let specs = DatasetSpec::all();
    let mut columns = vec!["rank".to_owned()];
    columns.extend(specs.iter().map(|s| s.name.to_owned()));
    let mut t = Table::new(
        format!("Figure 3: distribution of the {max_rank} highest scores (support per rank)"),
        columns,
    );
    let scores: Vec<dp_data::ScoreVector> = specs.iter().map(|s| s.scores()).collect();
    for rank in log_spaced_ranks(max_rank) {
        let mut row = vec![rank.to_string()];
        for sv in &scores {
            let s = sv.score_at_rank(rank).unwrap_or(0.0);
            row.push(format!("{s:.0}"));
        }
        t.push_row(row);
    }
    t
}

/// Roughly log-spaced ranks `1..=max`, deduplicated.
fn log_spaced_ranks(max: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut r = 1.0f64;
    while (r as usize) <= max {
        let v = r as usize;
        if out.last() != Some(&v) {
            out.push(v);
        }
        r *= 1.35;
    }
    if out.last() != Some(&max) {
        out.push(max);
    }
    out
}

/// One rendered panel of Figure 4/5 (a dataset × metric pair).
#[derive(Debug, Clone, PartialEq)]
pub struct FigurePanel {
    /// Dataset name.
    pub dataset: String,
    /// `"SER"` or `"FNR"`.
    pub metric: String,
    /// The series table: one row per `c`, one column per algorithm.
    pub table: Table,
}

fn panels_from_cells(
    dataset: &str,
    figure: &str,
    lineup: &[AlgorithmSpec],
    config: &ExperimentConfig,
    cells: &[CellResult],
) -> Vec<FigurePanel> {
    let labels: Vec<String> = lineup.iter().map(AlgorithmSpec::label).collect();
    let mut panels = Vec::with_capacity(2);
    for metric in ["SER", "FNR"] {
        let mut columns = vec!["c".to_owned()];
        columns.extend(labels.clone());
        let mut table = Table::new(
            format!(
                "{figure}: {dataset}, {metric} (ε={}, {} runs)",
                config.epsilon, config.runs
            ),
            columns,
        );
        for &c in &config.c_values {
            let mut row = vec![c.to_string()];
            for label in &labels {
                let cell = cells
                    .iter()
                    .find(|r| &r.algorithm == label && r.c == c)
                    .expect("sweep covers the full grid");
                let summary = if metric == "SER" { cell.ser } else { cell.fnr };
                row.push(mean_pm_std(summary.mean, summary.std_dev));
            }
            table.push_row(row);
        }
        panels.push(FigurePanel {
            dataset: dataset.to_owned(),
            metric: metric.to_owned(),
            table,
        });
    }
    panels
}

/// Figure 4: the interactive comparison (SVT-DPBook and SVT-S under
/// four allocation policies) on the given datasets.
///
/// # Errors
/// Propagates sweep errors.
pub fn figure4(
    datasets: &[PreparedDataset],
    config: &ExperimentConfig,
) -> Result<Vec<FigurePanel>> {
    let lineup = AlgorithmSpec::figure4_lineup();
    let mut panels = Vec::new();
    for data in datasets {
        let cells = run_sweep(data, &lineup, config)?;
        panels.extend(panels_from_cells(
            &data.name, "Figure 4", &lineup, config, &cells,
        ));
    }
    Ok(panels)
}

/// Figure 5: the non-interactive comparison (SVT-S, SVT-ReTr-1D..5D,
/// EM) on the given datasets.
///
/// # Errors
/// Propagates sweep errors.
pub fn figure5(
    datasets: &[PreparedDataset],
    config: &ExperimentConfig,
) -> Result<Vec<FigurePanel>> {
    let lineup = AlgorithmSpec::figure5_lineup();
    let mut panels = Vec::new();
    for data in datasets {
        let cells = run_sweep(data, &lineup, config)?;
        panels.extend(panels_from_cells(
            &data.name, "Figure 5", &lineup, config, &cells,
        ));
    }
    Ok(panels)
}

/// §5: the `α_SVT` vs `α_EM` comparison across candidate-set sizes.
///
/// # Errors
/// Propagates domain validation from the bound formulas.
pub fn alpha_table(epsilon: f64, beta: f64, ks: &[usize]) -> Result<Table> {
    let mut t = Table::new(
        format!("Section 5: accuracy bounds α_SVT vs α_EM (β={beta}, ε={epsilon})"),
        vec![
            "k (queries)".into(),
            "α_SVT".into(),
            "α_EM".into(),
            "α_SVT / α_EM".into(),
        ],
    );
    for &k in ks {
        let cmp = svt_core::analysis::compare_alpha(k, beta, epsilon)?;
        t.push_row(vec![
            k.to_string(),
            format!("{:.1}", cmp.alpha_svt),
            format!("{:.1}", cmp.alpha_em),
            format!("{:.2}", cmp.advantage),
        ]);
    }
    Ok(t)
}

/// Extension (`DESIGN.md` §6): the §4.2 budget-allocation ablation.
///
/// Sweeps the ratio `r` in `ε₁ : ε₂ = 1 : r` over a log grid spanning
/// `1:1` to well past `1:c`, measuring SER/FNR at a fixed cutoff, and
/// appends the Eq. 12 optimum `1 : c^{2/3}` (monotonic counting
/// queries) for comparison. The comparison noise deviation
/// `√(2(Δ/ε₁)² + 2(cΔ/ε₂)²)` — the §4.2 objective — is printed
/// alongside, so one can see the measured error tracking the analytic
/// objective.
///
/// # Errors
/// Propagates sweep errors.
pub fn allocation_ablation(
    dataset: &PreparedDataset,
    config: &ExperimentConfig,
    c: usize,
    grid_points: usize,
) -> Result<Table> {
    let mut t = Table::new(
        format!(
            "Allocation ablation (§4.2): {} at ε={}, c={c}, {} runs",
            dataset.name, config.epsilon, config.runs
        ),
        vec![
            "ratio (1:r)".into(),
            "comparison σ".into(),
            "SER".into(),
            "FNR".into(),
            "note".into(),
        ],
    );
    let r_star = svt_core::allocation::optimal_ratio(c, true);
    // Log grid from 0.5 to 4c, covering the 1:1 and 1:c anchors.
    let lo = 0.5f64;
    let hi = 4.0 * c as f64;
    let mut ratios: Vec<(f64, &str)> = (0..grid_points)
        .map(|i| {
            let f = i as f64 / (grid_points.saturating_sub(1)).max(1) as f64;
            (lo * (hi / lo).powf(f), "")
        })
        .collect();
    ratios.push((r_star, "Eq. 12 optimum"));
    ratios.push((1.0, "historical 1:1"));
    ratios.push((c as f64, "1:c heuristic"));
    ratios.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));

    for (r, note) in ratios {
        let alg = AlgorithmSpec::Standard {
            ratio: svt_core::allocation::BudgetRatio::Custom(r),
        };
        let cell = crate::runner::run_cell(dataset, &alg, c, config)?;
        let eps1 = config.epsilon / (1.0 + r);
        let sigma =
            svt_core::allocation::comparison_variance(eps1, config.epsilon - eps1, c, 1.0, true)
                .sqrt();
        t.push_row(vec![
            format!("{r:.2}"),
            format!("{sigma:.0}"),
            mean_pm_std(cell.ser.mean, cell.ser.std_dev),
            mean_pm_std(cell.fnr.mean, cell.fnr.std_dev),
            note.into(),
        ]);
    }
    Ok(t)
}

/// Extension: the ε sweep the paper omits for space ("we note that
/// varying c [has] a similar impact of varying ε, since the accuracy of
/// each method is mostly affect[ed] by ε/c").
///
/// Fixes `c` and sweeps `ε`, comparing the interactive recommendation
/// (SVT-S with the optimized allocation), the historical 1:1 SVT, and
/// EM — making the ε/c equivalence observable.
///
/// # Errors
/// Propagates sweep errors.
pub fn epsilon_sweep(
    dataset: &PreparedDataset,
    config: &ExperimentConfig,
    c: usize,
    epsilons: &[f64],
) -> Result<Table> {
    let lineup = [
        AlgorithmSpec::Standard {
            ratio: svt_core::allocation::BudgetRatio::OneToOne,
        },
        AlgorithmSpec::Standard {
            ratio: svt_core::allocation::BudgetRatio::OneToCTwoThirds,
        },
        AlgorithmSpec::Em,
    ];
    let mut columns = vec!["ε".to_owned(), "ε/c".to_owned()];
    columns.extend(lineup.iter().map(AlgorithmSpec::label));
    let mut t = Table::new(
        format!(
            "ε sweep (SER): {} at c={c}, {} runs",
            dataset.name, config.runs
        ),
        columns,
    );
    for &eps in epsilons {
        let mut row = vec![format!("{eps}"), format!("{:.1e}", eps / c as f64)];
        for alg in &lineup {
            let mut cfg = config.clone();
            cfg.epsilon = eps;
            let cell = crate::runner::run_cell(dataset, alg, c, &cfg)?;
            row.push(mean_pm_std(cell.ser.mean, cell.ser.std_dev));
        }
        t.push_row(row);
    }
    Ok(t)
}

/// The non-privacy audit table: Theorems 3, 6, 7 plus the Lemma 1 /
/// §3.3 boundedness check, measured at `trials` Monte-Carlo trials per
/// event and input.
pub fn nonprivacy_table(trials: u64, seed: u64) -> Table {
    let confidence = 0.975; // joint 95% per audit (Bonferroni)
    let mut rng = DpRng::seed_from_u64(seed);
    let mut t = Table::new(
        format!(
            "Non-privacy audits (paper Thms 3/6/7 + §3.3; {trials} trials/side, joint 95% bounds)"
        ),
        vec![
            "Witness".into(),
            "Target".into(),
            "Parameters".into(),
            "P̂[a|D]".into(),
            "P̂[a|D′]".into(),
            "measured ratio".into(),
            "theory".into(),
            "certified ε̂ ≥".into(),
            "verdict".into(),
        ],
    );

    let fmt_p = |e: &dp_auditor::BernoulliEstimate| format!("{:.2e}", e.point());
    let verdict = |audit: &dp_auditor::RatioAudit, claimed: f64| -> String {
        if audit.refutes_epsilon_dp(claimed) {
            format!("REFUTES {claimed}-DP")
        } else {
            format!("consistent with {claimed}-DP")
        }
    };

    // Theorem 3 — Alg. 5.
    let eps = 1.0;
    let audit = cx::audit_alg5_theorem3(eps, trials, confidence, &mut rng);
    t.push_row(vec![
        "Thm 3".into(),
        "Alg. 5 (Stoddard+)".into(),
        format!("ε={eps}"),
        fmt_p(&audit.on_d),
        fmt_p(&audit.on_d_prime),
        if audit.on_d_prime.successes == 0 {
            "∞ (0 hits on D′)".into()
        } else {
            format!("{:.1}", audit.point_epsilon().exp())
        },
        "∞".into(),
        format!("{:.2}", audit.epsilon_lower_bound()),
        verdict(&audit, eps),
    ]);

    // Theorem 6 — Alg. 3, growing m.
    for m in [2usize, 4, 6] {
        let eps = 2.0;
        let audit = cx::audit_alg3_theorem6(eps, m, 0.25, trials, confidence, &mut rng);
        t.push_row(vec![
            "Thm 6".into(),
            "Alg. 3 (Roth '11)".into(),
            format!("ε={eps}, m={m}"),
            fmt_p(&audit.on_d),
            fmt_p(&audit.on_d_prime),
            format!("{:.1}", audit.point_epsilon().exp()),
            format!("{:.1}", cx::alg3_theorem6_theoretical_ratio(eps, m)),
            format!("{:.2}", audit.epsilon_lower_bound()),
            verdict(&audit, eps),
        ]);
    }

    // Theorem 7 — Alg. 6, growing m.
    for m in [2usize, 3, 4] {
        let eps = 2.0;
        let audit = cx::audit_alg6_theorem7(eps, m, trials, confidence, &mut rng);
        t.push_row(vec![
            "Thm 7".into(),
            "Alg. 6 (Chen+)".into(),
            format!("ε={eps}, m={m}"),
            fmt_p(&audit.on_d),
            fmt_p(&audit.on_d_prime),
            format!("{:.1}", audit.point_epsilon().exp()),
            format!("≥{:.1}", cx::alg6_theorem7_theoretical_lower_bound(eps, m)),
            format!("{:.2}", audit.epsilon_lower_bound()),
            verdict(&audit, eps),
        ]);
    }

    // §3.3 — Alg. 1 stays bounded where the GPTT logic predicts blowup.
    for t_len in [5usize, 20, 40] {
        let eps = 1.0;
        let audit = cx::audit_alg1_gptt_logic(eps, t_len, trials, confidence, &mut rng);
        t.push_row(vec![
            "§3.3 / Lemma 1".into(),
            "Alg. 1 (this paper)".into(),
            format!("ε={eps}, t={t_len}"),
            fmt_p(&audit.on_d),
            fmt_p(&audit.on_d_prime),
            format!("{:.2}", audit.point_epsilon().exp()),
            format!("≤{:.2}", cx::alg1_lemma1_bound(eps)),
            format!("{:.2}", audit.epsilon_lower_bound()),
            verdict(&audit, eps),
        ]);
    }
    t
}

fn format_thousands(n: u64) -> String {
    let s = n.to_string();
    let mut out = String::with_capacity(s.len() + s.len() / 3);
    for (i, ch) in s.chars().enumerate() {
        if i > 0 && (s.len() - i) % 3 == 0 {
            out.push(',');
        }
        out.push(ch);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SimulationMode;
    use dp_data::ScoreVector;

    #[test]
    fn table1_pins_the_paper_numbers() {
        let t = table1();
        assert_eq!(t.rows.len(), 4);
        assert_eq!(t.rows[0][0], "BMS-POS");
        assert_eq!(t.rows[0][1], "515,597");
        assert_eq!(t.rows[2][2], "2,290,685");
    }

    #[test]
    fn table2_has_four_methods() {
        let t = table2();
        assert_eq!(t.rows.len(), 4);
        assert_eq!(t.rows[3][1], "EM");
    }

    #[test]
    fn figure2_table_shape_and_privacy_row() {
        let t = figure2_table(0.1, 50);
        assert_eq!(t.columns.len(), 7);
        let privacy = t.rows.iter().find(|r| r[0] == "Privacy property").unwrap();
        assert_eq!(privacy[1], "ε-DP");
        assert_eq!(privacy[3], "∞-DP");
        assert!(privacy[4].contains("ε-DP"));
    }

    #[test]
    fn figure3_ranks_are_monotone_and_scores_decay() {
        let t = figure3(300);
        assert_eq!(*t.columns.first().unwrap(), "rank");
        assert_eq!(t.rows.last().unwrap()[0], "300");
        // Kosarak column (index 2) must decay.
        let first: f64 = t.rows.first().unwrap()[2].parse().unwrap();
        let last: f64 = t.rows.last().unwrap()[2].parse().unwrap();
        assert!(first > last);
        assert_eq!(first, 600_000.0);
    }

    #[test]
    fn log_spaced_ranks_cover_endpoints() {
        let r = log_spaced_ranks(300);
        assert_eq!(*r.first().unwrap(), 1);
        assert_eq!(*r.last().unwrap(), 300);
        assert!(r.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn figure_panels_cover_grid_on_toy_data() {
        // Tiny synthetic sweep to validate panel assembly end to end.
        let mut v = vec![50.0; 10];
        v.extend(vec![1.0; 40]);
        let data = PreparedDataset::new("Toy", ScoreVector::new(v).unwrap());
        let config = ExperimentConfig {
            epsilon: 0.5,
            runs: 5,
            c_values: vec![5, 10],
            seed: 7,
            threads: 2,
            mode: SimulationMode::Auto,
        };
        let panels = figure4(&[data], &config).unwrap();
        assert_eq!(panels.len(), 2); // SER + FNR
        let ser = &panels[0];
        assert_eq!(ser.metric, "SER");
        assert_eq!(ser.table.columns.len(), 6); // c + 5 algorithms
        assert_eq!(ser.table.rows.len(), 2); // two c values
    }

    #[test]
    fn allocation_ablation_contains_anchors_and_tracks_objective() {
        let mut v = vec![200.0; 8];
        v.extend(vec![5.0; 60]);
        let data = PreparedDataset::new("Toy", ScoreVector::new(v).unwrap());
        let config = ExperimentConfig {
            epsilon: 0.5,
            runs: 6,
            c_values: vec![],
            seed: 11,
            threads: 2,
            mode: SimulationMode::Auto,
        };
        let t = allocation_ablation(&data, &config, 4, 5).unwrap();
        let notes: Vec<&str> = t.rows.iter().map(|r| r[4].as_str()).collect();
        assert!(notes.contains(&"Eq. 12 optimum"));
        assert!(notes.contains(&"historical 1:1"));
        assert!(notes.contains(&"1:c heuristic"));
        // Ratios are sorted ascending.
        let ratios: Vec<f64> = t.rows.iter().map(|r| r[0].parse().unwrap()).collect();
        assert!(ratios.windows(2).all(|w| w[0] <= w[1]));
        // The comparison-σ column is a valid positive number everywhere.
        for row in &t.rows {
            let sigma: f64 = row[1].parse().unwrap();
            assert!(sigma > 0.0);
        }
    }

    #[test]
    fn epsilon_sweep_orders_rows_by_epsilon() {
        // Exactly c winners, well separated: the §6 threshold then sits
        // at (400+2)/2 and a generous ε drives SER to ~0.
        let mut v = vec![400.0; 4];
        v.extend(vec![2.0; 40]);
        let data = PreparedDataset::new("Toy", ScoreVector::new(v).unwrap());
        let config = ExperimentConfig {
            epsilon: 0.1,
            runs: 6,
            c_values: vec![],
            seed: 13,
            threads: 2,
            mode: SimulationMode::Auto,
        };
        let t = epsilon_sweep(&data, &config, 4, &[0.05, 0.5, 5.0]).unwrap();
        assert_eq!(t.rows.len(), 3);
        assert_eq!(t.columns.len(), 5); // ε, ε/c, 3 algorithms

        // At huge ε everything should be near-perfect (SER ≈ 0);
        // extract the mean from "m ± s" of the optimized column.
        let last = &t.rows[2][3];
        let mean: f64 = last.split('±').next().unwrap().trim().parse().unwrap();
        assert!(mean < 0.1, "SER at ε=5 should be tiny, got {last}");
    }

    #[test]
    fn alpha_table_reports_advantage_over_8() {
        let t = alpha_table(0.1, 0.05, &[100, 1000]).unwrap();
        assert_eq!(t.rows.len(), 2);
        let adv: f64 = t.rows[0][3].parse().unwrap();
        assert!(adv > 8.0);
    }

    #[test]
    fn format_thousands_groups_digits() {
        assert_eq!(format_thousands(0), "0");
        assert_eq!(format_thousands(999), "999");
        assert_eq!(format_thousands(1_000), "1,000");
        assert_eq!(format_thousands(2_290_685), "2,290,685");
    }
}
