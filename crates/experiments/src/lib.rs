//! # svt-experiments
//!
//! The evaluation harness that regenerates every table and figure of
//! *Understanding the Sparse Vector Technique for Differential Privacy*
//! (Section 6 plus the appendix experiments):
//!
//! - [`metrics`] — False Negative Rate and Score Error Rate (§6,
//!   "Utility Measures") and streaming mean/std accumulation;
//! - [`spec`] — algorithm and experiment configuration (the paper's
//!   grid: ε = 0.1, c ∈ {25, …, 300}, 100 runs, random item order);
//! - [`simulate`] — the per-dataset [`simulate::SweepContext`] (one
//!   shared score sort + rank table) and two bit-comparable run
//!   engines on top of it: the faithful per-query
//!   [`simulate::exact`] traversal and its index-level
//!   [`simulate::grouped`] mirror, which resolves every score through
//!   the grouped runs yet emits identical selections;
//! - [`runner`] — a deterministic multi-threaded sweep driver;
//! - [`serving`] — the `serve_smoke` multi-tenant workload over
//!   `svt-server` (N tenants × M worker threads, qps and batch-latency
//!   percentiles, ledger audit);
//! - [`figures`] — builders for Table 1/2, Figure 2/3/4/5, the §5 α
//!   analysis, and the non-privacy audits;
//! - [`report`] — plain-text table rendering and CSV export.
//!
//! Binaries (`cargo run -p svt-experiments --bin <name> --release`):
//! `table1`, `table2`, `figure2`, `figure3`, `figure4`, `figure5`,
//! `alpha`, `nonprivacy`, the extension sweeps `ablation` and
//! `epsilon_sweep`, and `all`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cli;
pub mod figures;
pub mod metrics;
pub mod report;
pub mod runner;
pub mod serving;
pub mod simulate;
pub mod spec;

pub use metrics::{false_negative_rate, score_error_rate, MetricSummary};
pub use report::Table;
pub use spec::{AlgorithmSpec, ExperimentConfig};
