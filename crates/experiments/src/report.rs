//! Plain-text table rendering and CSV export.
//!
//! The paper reports figures; a terminal harness reports the same
//! series as aligned tables (one row per `c`, one column per
//! algorithm) plus machine-readable CSV for re-plotting.

use std::io::Write;

/// A generic rendered table.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Title printed above the table.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Rows of cells (each row must match `columns` in length).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with headers.
    pub fn new(title: impl Into<String>, columns: Vec<String>) -> Self {
        Self {
            title: title.into(),
            columns,
            rows: Vec::new(),
        }
    }

    /// Appends a row (debug-asserts the width).
    pub fn push_row(&mut self, row: Vec<String>) {
        debug_assert_eq!(row.len(), self.columns.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.chars().count()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        let mut out = String::new();
        out.push_str(&self.title);
        out.push('\n');
        let sep: String = widths
            .iter()
            .map(|w| "-".repeat(*w + 2))
            .collect::<Vec<_>>()
            .join("+");
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!(" {:<width$} ", c, width = w))
                .collect::<Vec<_>>()
                .join("|")
        };
        out.push_str(&fmt_row(&self.columns));
        out.push('\n');
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Serializes as CSV (minimal quoting: fields containing commas or
    /// quotes are double-quoted).
    pub fn to_csv(&self) -> String {
        let quote = |s: &str| -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_owned()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .columns
                .iter()
                .map(|c| quote(c))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Writes the CSV form to a file.
    ///
    /// # Errors
    /// Propagates I/O failures.
    pub fn write_csv(&self, path: &std::path::Path) -> std::io::Result<()> {
        let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
        f.write_all(self.to_csv().as_bytes())?;
        f.flush()
    }
}

/// Formats `mean ± std` compactly.
pub fn mean_pm_std(mean: f64, std_dev: f64) -> String {
    format!("{mean:.3}±{std_dev:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(
            "demo",
            vec!["c".to_owned(), "EM".to_owned(), "SVT".to_owned()],
        );
        t.push_row(vec!["25".into(), "0.01".into(), "0.10".into()]);
        t.push_row(vec!["300".into(), "0.50".into(), "0.99".into()]);
        t
    }

    #[test]
    fn render_aligns_columns() {
        let r = sample().render();
        assert!(r.starts_with("demo\n"));
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 5);
        // Header and rows share the pipe positions.
        let pipe_positions = |s: &str| -> Vec<usize> {
            s.char_indices()
                .filter(|(_, c)| *c == '|')
                .map(|(i, _)| i)
                .collect()
        };
        assert_eq!(pipe_positions(lines[1]), pipe_positions(lines[3]));
        assert_eq!(pipe_positions(lines[1]), pipe_positions(lines[4]));
    }

    #[test]
    fn csv_round_trip_shape() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "c,EM,SVT");
        assert_eq!(lines[2], "300,0.50,0.99");
    }

    #[test]
    fn csv_quotes_special_fields() {
        let mut t = Table::new("q", vec!["a".to_owned()]);
        t.push_row(vec!["with,comma".into()]);
        t.push_row(vec!["with\"quote".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"with,comma\""));
        assert!(csv.contains("\"with\"\"quote\""));
    }

    #[test]
    fn write_csv_creates_file() {
        let path = std::env::temp_dir().join("svt_report_test.csv");
        sample().write_csv(&path).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.starts_with("c,EM,SVT"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mean_pm_std_formats() {
        assert_eq!(mean_pm_std(0.12345, 0.0456), "0.123±0.046");
    }
}
