//! `serve_smoke`: a deterministic multi-tenant serving workload over
//! `svt-server`'s [`SessionStore`], reporting throughput and latency.
//!
//! The workload models the paper's interactive setting at serving
//! scale: `tenants` independent budget domains, each holding
//! `sessions_per_tenant` SVT sessions, driven by `threads` worker
//! threads that submit queries in batches of `batch`. Tenants are
//! partitioned across threads (tenant `t` belongs to thread
//! `t % threads`), so each session's query order is fixed regardless of
//! thread interleaving — which, combined with the store's determinism
//! contract, makes every answer a pure function of the configuration
//! and seed even under full concurrency.
//!
//! The driver measures wall-clock per `submit_batch` call and reports
//! aggregate qps plus p50/p99 batch latency, then audits every
//! tenant's receipt chain via `verify_all` — a run only counts as
//! passing if the ledgers do.

use std::time::Instant;

use dp_mechanisms::SvtBudget;
use svt_core::alg::StandardSvtConfig;
use svt_server::{BatchQuery, ServerConfig, SessionStore, TenantId};

/// Workload shape for [`serve_smoke`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeSmokeConfig {
    /// Number of tenants (independent budget domains).
    pub tenants: usize,
    /// Worker threads; tenants are partitioned across them.
    pub threads: usize,
    /// Sessions opened per tenant.
    pub sessions_per_tenant: usize,
    /// Queries submitted per session.
    pub queries_per_session: usize,
    /// Queries per `submit_batch` call.
    pub batch: usize,
    /// Store shard count.
    pub shards: usize,
    /// Base seed; every session's stream derives deterministically.
    pub seed: u64,
    /// Each tenant's total privacy budget.
    pub tenant_epsilon: f64,
    /// Budget charged per session
    /// (`sessions_per_tenant × session_epsilon` must fit the tenant).
    pub session_epsilon: f64,
    /// Per-session positive-answer allowance `c`.
    pub cutoff: usize,
}

impl Default for ServeSmokeConfig {
    fn default() -> Self {
        Self {
            tenants: 32,
            threads: 8,
            sessions_per_tenant: 4,
            queries_per_session: 500,
            batch: 64,
            shards: 16,
            seed: 0x5eed_05e1,
            tenant_epsilon: 8.0,
            session_epsilon: 0.5,
            cutoff: 25,
        }
    }
}

/// What one [`serve_smoke`] run measured.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeSmokeReport {
    /// Tenants served.
    pub tenants: usize,
    /// Worker threads used.
    pub threads: usize,
    /// Sessions opened (tenants × sessions_per_tenant).
    pub sessions: usize,
    /// Queries answered (including per-query protocol rejections).
    pub queries: usize,
    /// `submit_batch` calls issued.
    pub batches: usize,
    /// Wall-clock of the submission phase.
    pub elapsed_ns: u128,
    /// Queries per second over the submission phase.
    pub qps: f64,
    /// Median `submit_batch` latency.
    pub p50_batch_ns: u128,
    /// 99th-percentile `submit_batch` latency.
    pub p99_batch_ns: u128,
    /// Positive (`⊤`) answers across all sessions.
    pub positives: usize,
    /// Tenants whose receipt chain audited clean (must equal
    /// `tenants` for a passing run).
    pub ledgers_verified: usize,
}

/// Deterministic pseudo-workload: mostly-below answers with sparse
/// spikes, distinct per (session ordinal, query index).
fn query_answer(session_ordinal: usize, q: usize) -> f64 {
    if (session_ordinal * 31 + q * 7) % 97 == 0 {
        1e9
    } else {
        -1e9 + (session_ordinal * 1000 + q) as f64
    }
}

/// Runs the serving workload and audits every ledger.
///
/// # Panics
/// On an inconsistent configuration (zero tenants/threads/batch, a
/// session budget that does not fit the tenant budget) — this is a
/// harness, not a validation surface.
pub fn serve_smoke(cfg: &ServeSmokeConfig) -> ServeSmokeReport {
    assert!(cfg.tenants > 0 && cfg.threads > 0 && cfg.batch > 0);
    assert!(cfg.sessions_per_tenant > 0 && cfg.queries_per_session > 0);
    let store = SessionStore::new(ServerConfig { shards: cfg.shards });
    let session_config = StandardSvtConfig {
        budget: SvtBudget::halves(cfg.session_epsilon).expect("valid session budget"),
        sensitivity: 1.0,
        c: cfg.cutoff,
        monotonic: true,
    };

    for t in 0..cfg.tenants {
        store
            .register_tenant(TenantId(t as u64), cfg.tenant_epsilon)
            .expect("fresh tenant");
    }

    struct WorkerStats {
        latencies: Vec<u128>,
        queries: usize,
        positives: usize,
    }

    let start = Instant::now();
    let stats: Vec<WorkerStats> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.threads)
            .map(|w| {
                let store = &store;
                scope.spawn(move || {
                    // This worker owns every tenant ≡ w (mod threads).
                    let mut sessions = Vec::new();
                    for t in (w..cfg.tenants).step_by(cfg.threads) {
                        for s in 0..cfg.sessions_per_tenant {
                            let ordinal = t * cfg.sessions_per_tenant + s;
                            let seed = cfg.seed ^ ((ordinal as u64) << 17);
                            let id = store
                                .open_session(TenantId(t as u64), session_config, seed)
                                .expect("tenant budget fits its sessions");
                            sessions.push((id, ordinal));
                        }
                    }
                    let mut stats = WorkerStats {
                        latencies: Vec::new(),
                        queries: 0,
                        positives: 0,
                    };
                    // Stream (query q of session k) in session-major
                    // rounds, chunked into fixed-size batches.
                    let mut pending = Vec::with_capacity(cfg.batch);
                    let flush = |pending: &mut Vec<BatchQuery>, stats: &mut WorkerStats| {
                        if pending.is_empty() {
                            return;
                        }
                        let t0 = Instant::now();
                        let results = store.submit_batch(pending);
                        stats.latencies.push(t0.elapsed().as_nanos());
                        stats.queries += results.len();
                        stats.positives += results
                            .iter()
                            .filter(|r| matches!(r, Ok(a) if a.is_positive()))
                            .count();
                        pending.clear();
                    };
                    for q in 0..cfg.queries_per_session {
                        for &(id, ordinal) in &sessions {
                            pending.push(BatchQuery {
                                session: id,
                                query_answer: query_answer(ordinal, q),
                                threshold: 0.0,
                            });
                            if pending.len() == cfg.batch {
                                flush(&mut pending, &mut stats);
                            }
                        }
                    }
                    flush(&mut pending, &mut stats);
                    stats
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let elapsed_ns = start.elapsed().as_nanos();

    let mut latencies: Vec<u128> = stats
        .iter()
        .flat_map(|s| s.latencies.iter().copied())
        .collect();
    latencies.sort_unstable();
    let percentile = |p: usize| -> u128 {
        if latencies.is_empty() {
            return 0;
        }
        latencies[(latencies.len() - 1) * p / 100]
    };
    let queries: usize = stats.iter().map(|s| s.queries).sum();
    let ledgers_verified = store
        .verify_all()
        .expect("every receipt chain audits clean");

    ServeSmokeReport {
        tenants: cfg.tenants,
        threads: cfg.threads,
        sessions: cfg.tenants * cfg.sessions_per_tenant,
        queries,
        batches: latencies.len(),
        elapsed_ns,
        qps: queries as f64 / (elapsed_ns.max(1) as f64 / 1e9),
        p50_batch_ns: percentile(50),
        p99_batch_ns: percentile(99),
        positives: stats.iter().map(|s| s.positives).sum(),
        ledgers_verified,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance-criterion shape: 8 threads × 32 tenants, every
    /// ledger chain verifying.
    #[test]
    fn eight_threads_thirty_two_tenants_audit_clean() {
        let cfg = ServeSmokeConfig {
            queries_per_session: 60, // keep the test snappy
            ..ServeSmokeConfig::default()
        };
        assert_eq!((cfg.tenants, cfg.threads), (32, 8));
        let report = serve_smoke(&cfg);
        assert_eq!(report.ledgers_verified, 32);
        assert_eq!(report.sessions, 128);
        assert_eq!(report.queries, 128 * 60);
        assert!(report.qps > 0.0);
        assert!(report.p50_batch_ns <= report.p99_batch_ns);
    }

    /// The workload is deterministic: same config, same answers.
    #[test]
    fn runs_are_reproducible() {
        let cfg = ServeSmokeConfig {
            tenants: 6,
            threads: 3,
            sessions_per_tenant: 2,
            queries_per_session: 80,
            ..ServeSmokeConfig::default()
        };
        let a = serve_smoke(&cfg);
        let b = serve_smoke(&cfg);
        assert_eq!(a.positives, b.positives);
        assert_eq!(a.queries, b.queries);
        assert_eq!(a.ledgers_verified, b.ledgers_verified);
    }
}
