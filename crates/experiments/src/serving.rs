//! `serve_smoke`: a deterministic multi-tenant serving workload over
//! `svt-server`'s [`SessionStore`], reporting throughput, latency, and
//! — since the store grew a write-ahead log — crash recovery.
//!
//! The workload models the paper's interactive setting at serving
//! scale: `tenants` independent budget domains, each holding
//! `sessions_per_tenant` SVT sessions, driven by `threads` worker
//! threads that submit queries in batches of `batch`. Tenants are
//! partitioned across threads (tenant `t` belongs to thread
//! `t % threads`), so each session's query order is fixed regardless of
//! thread interleaving — which, combined with the store's determinism
//! contract, makes every answer a pure function of the configuration
//! and seed even under full concurrency.
//!
//! The run is split around a simulated crash:
//!
//! 1. **Phase A** — the first half of each session's queries, fully
//!    concurrent, against a WAL-backed store.
//! 2. **Crash** — the store is dropped mid-life and a torn partial
//!    record is appended to one shard's log, exactly what a writer
//!    dying mid-`write(2)` leaves behind.
//! 3. **Recovery** — `recover_wal_dir` rebuilds every tenant ledger
//!    (timed; reported as `recovery_ms`), and the driver asserts the
//!    recovered spent `ε` is *bit-identical* to the pre-crash
//!    snapshot: acknowledged ⇒ persisted, and the torn tail dropped.
//! 4. **Phase B** — fresh sessions on the recovered store run the
//!    second half of the queries, proving the store keeps serving on
//!    the same chains.
//! 5. **Churn** — a single-threaded admission/lifecycle exercise on
//!    ephemeral stores: a rate-limited tenant sheds deterministically
//!    (`shed`), and an over-cap shard reclaims LRU sessions
//!    (`evicted`).
//!
//! The driver measures wall-clock per `submit_batch` call and reports
//! aggregate qps plus p50/p99 batch latency, then audits every
//! tenant's receipt chain via `verify_all` — a run only counts as
//! passing if the ledgers do.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use dp_mechanisms::wal::FsyncPolicy;
use dp_mechanisms::SvtBudget;
use svt_core::alg::StandardSvtConfig;
use svt_server::{BatchQuery, RateLimit, ServerConfig, ServerError, SessionStore, TenantId};

/// Workload shape for [`serve_smoke`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeSmokeConfig {
    /// Number of tenants (independent budget domains).
    pub tenants: usize,
    /// Worker threads; tenants are partitioned across them.
    pub threads: usize,
    /// Sessions opened per tenant *per phase* (each phase opens its
    /// own: session noise state intentionally does not survive the
    /// crash).
    pub sessions_per_tenant: usize,
    /// Queries submitted per session across both phases (half before
    /// the crash, half after).
    pub queries_per_session: usize,
    /// Queries per `submit_batch` call.
    pub batch: usize,
    /// Store shard count.
    pub shards: usize,
    /// Base seed; every session's stream derives deterministically.
    pub seed: u64,
    /// Each tenant's total privacy budget
    /// (`2 × sessions_per_tenant × session_epsilon` must fit: both
    /// phases charge).
    pub tenant_epsilon: f64,
    /// Budget charged per session.
    pub session_epsilon: f64,
    /// Per-session positive-answer allowance `c`.
    pub cutoff: usize,
}

impl Default for ServeSmokeConfig {
    fn default() -> Self {
        Self {
            tenants: 32,
            threads: 8,
            sessions_per_tenant: 4,
            queries_per_session: 500,
            batch: 64,
            shards: 16,
            seed: 0x5eed_05e1,
            tenant_epsilon: 8.0,
            session_epsilon: 0.5,
            cutoff: 25,
        }
    }
}

/// What one [`serve_smoke`] run measured.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeSmokeReport {
    /// Tenants served.
    pub tenants: usize,
    /// Worker threads used.
    pub threads: usize,
    /// Sessions opened across both phases.
    pub sessions: usize,
    /// Queries answered (including per-query protocol rejections).
    pub queries: usize,
    /// `submit_batch` calls issued.
    pub batches: usize,
    /// Wall-clock of the submission phases (recovery excluded).
    pub elapsed_ns: u128,
    /// Queries per second over the submission phases.
    pub qps: f64,
    /// Median `submit_batch` latency.
    pub p50_batch_ns: u128,
    /// 99th-percentile `submit_batch` latency.
    pub p99_batch_ns: u128,
    /// Positive (`⊤`) answers across all sessions.
    pub positives: usize,
    /// Requests shed by admission control in the churn phase
    /// (deterministic).
    pub shed: usize,
    /// Sessions reclaimed by the LRU cap in the churn phase
    /// (deterministic).
    pub evicted: usize,
    /// Wall-clock of WAL replay + chain re-verification after the
    /// simulated crash.
    pub recovery_ms: f64,
    /// Tenants whose receipt chain audited clean (must equal
    /// `tenants` for a passing run).
    pub ledgers_verified: usize,
}

/// Deterministic pseudo-workload: mostly-below answers with sparse
/// spikes, distinct per (session ordinal, query index).
fn query_answer(session_ordinal: usize, q: usize) -> f64 {
    if (session_ordinal * 31 + q * 7) % 97 == 0 {
        1e9
    } else {
        -1e9 + (session_ordinal * 1000 + q) as f64
    }
}

struct WorkerStats {
    latencies: Vec<u128>,
    queries: usize,
    positives: usize,
}

/// Opens `sessions_per_tenant` sessions per tenant (ordinals offset by
/// `ordinal_base` so phases draw distinct noise streams) and submits
/// `queries_per_session` queries to each, across `cfg.threads` workers.
fn run_phase(
    store: &SessionStore,
    cfg: &ServeSmokeConfig,
    ordinal_base: usize,
    queries_per_session: usize,
) -> Vec<WorkerStats> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.threads)
            .map(|w| {
                scope.spawn(move || {
                    // This worker owns every tenant ≡ w (mod threads).
                    let session_config = StandardSvtConfig {
                        budget: SvtBudget::halves(cfg.session_epsilon)
                            .expect("valid session budget"),
                        sensitivity: 1.0,
                        c: cfg.cutoff,
                        monotonic: true,
                    };
                    let mut sessions = Vec::new();
                    for t in (w..cfg.tenants).step_by(cfg.threads) {
                        for s in 0..cfg.sessions_per_tenant {
                            let ordinal = ordinal_base + t * cfg.sessions_per_tenant + s;
                            let seed = cfg.seed ^ ((ordinal as u64) << 17);
                            let id = store
                                .open_session(TenantId(t as u64), session_config, seed)
                                .expect("tenant budget fits its sessions");
                            sessions.push((id, ordinal));
                        }
                    }
                    let mut stats = WorkerStats {
                        latencies: Vec::new(),
                        queries: 0,
                        positives: 0,
                    };
                    // Stream (query q of session k) in session-major
                    // rounds, chunked into fixed-size batches.
                    let mut pending = Vec::with_capacity(cfg.batch);
                    let flush = |pending: &mut Vec<BatchQuery>, stats: &mut WorkerStats| {
                        if pending.is_empty() {
                            return;
                        }
                        let t0 = Instant::now();
                        let results = store.submit_batch(pending);
                        stats.latencies.push(t0.elapsed().as_nanos());
                        stats.queries += results.len();
                        stats.positives += results
                            .iter()
                            .filter(|r| matches!(r, Ok(a) if a.is_positive()))
                            .count();
                        pending.clear();
                    };
                    for q in 0..queries_per_session {
                        for &(id, ordinal) in &sessions {
                            pending.push(BatchQuery {
                                session: id,
                                query_answer: query_answer(ordinal, q),
                                threshold: 0.0,
                            });
                            if pending.len() == cfg.batch {
                                flush(&mut pending, &mut stats);
                            }
                        }
                    }
                    flush(&mut pending, &mut stats);
                    stats
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
}

/// Single-threaded admission/lifecycle churn on ephemeral stores;
/// returns `(shed, evicted)`, both deterministic.
fn churn(cfg: &ServeSmokeConfig) -> (usize, usize) {
    let session_config = StandardSvtConfig {
        budget: SvtBudget::halves(cfg.session_epsilon).expect("valid session budget"),
        sensitivity: 1.0,
        c: cfg.cutoff,
        monotonic: true,
    };
    // A throttled tenant: 5 tokens, no refill. The open consumes one;
    // exactly 4 of the 30 submits are admitted, 26 shed.
    let throttled = SessionStore::new(ServerConfig {
        shards: 1,
        rate_limit: Some(RateLimit {
            rate_per_tick: 0.0,
            burst: 5.0,
        }),
        ..Default::default()
    });
    throttled
        .register_tenant(TenantId(0), cfg.tenant_epsilon)
        .expect("fresh tenant");
    let session = throttled
        .open_session(TenantId(0), session_config, cfg.seed)
        .expect("first open is within the burst");
    let mut shed = 0;
    for q in 0..30 {
        match throttled.submit(session, query_answer(0, q), 0.0) {
            Ok(_) => {}
            Err(e) if e.is_retryable() => shed += 1,
            Err(e) => panic!("unexpected churn error: {e}"),
        }
    }
    // An over-cap shard: 12 small sessions against a cap of 4 reclaim
    // the 8 least-recently-used; probing the ids counts the victims.
    let capped = SessionStore::new(ServerConfig {
        shards: 1,
        session_cap: Some(4),
        ..Default::default()
    });
    capped
        .register_tenant(TenantId(0), 100.0 * cfg.session_epsilon)
        .expect("fresh tenant");
    let ids: Vec<_> = (0..12)
        .map(|s| {
            capped
                .open_session(TenantId(0), session_config, cfg.seed ^ s)
                .expect("budget fits the churn opens")
        })
        .collect();
    let evicted = ids
        .iter()
        .filter(|&&id| {
            matches!(
                capped.session_status(id),
                Err(ServerError::SessionEvicted { .. })
            )
        })
        .count();
    (shed, evicted)
}

static SMOKE_DIR_NONCE: AtomicU64 = AtomicU64::new(0);

/// A process-unique scratch directory for this run's WAL files.
fn fresh_wal_dir(seed: u64) -> PathBuf {
    let nonce = SMOKE_DIR_NONCE.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "svt-serve-smoke-{}-{seed:016x}-{nonce}",
        std::process::id()
    ))
}

/// Runs the serving workload — phase A, simulated crash, timed
/// recovery, phase B, churn — and audits every ledger.
///
/// # Panics
/// On an inconsistent configuration (zero tenants/threads/batch, a
/// session budget that does not fit the tenant budget), on a WAL I/O
/// failure in the scratch directory, or if recovery breaks the
/// acknowledged-⇒-persisted invariant — this is a harness, not a
/// validation surface.
pub fn serve_smoke(cfg: &ServeSmokeConfig) -> ServeSmokeReport {
    assert!(cfg.tenants > 0 && cfg.threads > 0 && cfg.batch > 0);
    assert!(cfg.sessions_per_tenant > 0 && cfg.queries_per_session > 1);
    let server_config = ServerConfig {
        shards: cfg.shards,
        ..Default::default()
    };
    let wal_dir = fresh_wal_dir(cfg.seed);
    std::fs::create_dir_all(&wal_dir).expect("create WAL scratch dir");

    let store = SessionStore::with_wal_dir(server_config, &wal_dir, FsyncPolicy::Always)
        .expect("open WAL files");
    for t in 0..cfg.tenants {
        store
            .register_tenant(TenantId(t as u64), cfg.tenant_epsilon)
            .expect("fresh tenant");
    }

    // Phase A: first half of the queries, fully concurrent.
    let half = cfg.queries_per_session / 2;
    let start_a = Instant::now();
    let mut stats = run_phase(&store, cfg, 0, half);
    let elapsed_a = start_a.elapsed().as_nanos();

    // Crash: snapshot acknowledged spend, drop the store mid-life, and
    // tear one shard's log the way a dying `write(2)` would.
    let snapshot: Vec<u64> = (0..cfg.tenants)
        .map(|t| {
            store
                .ledger_view(TenantId(t as u64))
                .expect("registered tenant")
                .spent
                .to_bits()
        })
        .collect();
    drop(store);
    {
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(wal_dir.join("wal-000.log"))
            .expect("shard 0 log exists");
        f.write_all(&[0xAB; 57]).expect("append torn tail");
    }

    // Recovery: replay every shard log, re-verify every chain, resume.
    let t0 = Instant::now();
    let (store, recovery) =
        SessionStore::recover_wal_dir(server_config, &wal_dir, FsyncPolicy::Always)
            .expect("the surviving logs replay");
    let recovery_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(recovery.tenants, cfg.tenants, "every tenant recovered");
    assert!(recovery.torn_tail_bytes >= 57, "the torn tail was dropped");
    for (t, &want) in snapshot.iter().enumerate() {
        let got = store
            .ledger_view(TenantId(t as u64))
            .expect("recovered tenant")
            .spent
            .to_bits();
        assert_eq!(got, want, "tenant {t}: recovered spend must match the ack");
    }

    // Phase B: fresh sessions on the recovered store, second half.
    let ordinal_base = cfg.tenants * cfg.sessions_per_tenant;
    let start_b = Instant::now();
    stats.extend(run_phase(
        &store,
        cfg,
        ordinal_base,
        cfg.queries_per_session - half,
    ));
    let elapsed_ns = elapsed_a + start_b.elapsed().as_nanos();

    let mut latencies: Vec<u128> = stats
        .iter()
        .flat_map(|s| s.latencies.iter().copied())
        .collect();
    latencies.sort_unstable();
    let percentile = |p: usize| -> u128 {
        if latencies.is_empty() {
            return 0;
        }
        latencies[(latencies.len() - 1) * p / 100]
    };
    let queries: usize = stats.iter().map(|s| s.queries).sum();
    let ledgers_verified = store
        .verify_all()
        .expect("every receipt chain audits clean");
    drop(store);
    let _ = std::fs::remove_dir_all(&wal_dir);

    let (shed, evicted) = churn(cfg);

    ServeSmokeReport {
        tenants: cfg.tenants,
        threads: cfg.threads,
        sessions: 2 * cfg.tenants * cfg.sessions_per_tenant,
        queries,
        batches: latencies.len(),
        elapsed_ns,
        qps: queries as f64 / (elapsed_ns.max(1) as f64 / 1e9),
        p50_batch_ns: percentile(50),
        p99_batch_ns: percentile(99),
        positives: stats.iter().map(|s| s.positives).sum(),
        shed,
        evicted,
        recovery_ms,
        ledgers_verified,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance-criterion shape: 8 threads × 32 tenants, a crash
    /// and recovery in the middle, every ledger chain verifying.
    #[test]
    fn eight_threads_thirty_two_tenants_audit_clean() {
        let cfg = ServeSmokeConfig {
            queries_per_session: 60, // keep the test snappy
            ..ServeSmokeConfig::default()
        };
        assert_eq!((cfg.tenants, cfg.threads), (32, 8));
        let report = serve_smoke(&cfg);
        assert_eq!(report.ledgers_verified, 32);
        assert_eq!(report.sessions, 256); // 128 per phase
        assert_eq!(report.queries, 128 * 60);
        assert!(report.qps > 0.0);
        assert!(report.p50_batch_ns <= report.p99_batch_ns);
        assert!(report.recovery_ms > 0.0);
        assert_eq!(report.shed, 26);
        assert_eq!(report.evicted, 8);
    }

    /// The workload is deterministic: same config, same answers.
    #[test]
    fn runs_are_reproducible() {
        let cfg = ServeSmokeConfig {
            tenants: 6,
            threads: 3,
            sessions_per_tenant: 2,
            queries_per_session: 80,
            ..ServeSmokeConfig::default()
        };
        let a = serve_smoke(&cfg);
        let b = serve_smoke(&cfg);
        assert_eq!(a.positives, b.positives);
        assert_eq!(a.queries, b.queries);
        assert_eq!(a.ledgers_verified, b.ledgers_verified);
        assert_eq!((a.shed, a.evicted), (b.shed, b.evicted));
    }
}
