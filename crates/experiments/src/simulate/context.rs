//! The per-dataset sweep context: one sort, shared by every cell —
//! and, with [`SweepContext::load_or_build`], persisted so repeat
//! invocations skip even that one sort.
//!
//! A sweep evaluates many `(engine, algorithm, c)` cells over one
//! dataset. Everything those cells need from the dataset is a function
//! of a single sorted view of its scores — the grouped runs, the exact
//! top-`c` (a prefix of the sorted order), the §6 threshold and top
//! score sum for any `c` — so [`SweepContext`] holds that view (an
//! `Arc`-shared, epoch-pinned [`GroupedSnapshot`], sorted exactly
//! once) and every context borrows it:
//!
//! ```text
//! PreparedDataset (name, ScoreVector)
//!   └── SweepContext             ← one shared sort per dataset
//!        ├── Arc<GroupedSnapshot> (order, positions, offsets, prefix sums)
//!        ├── rank table          rank_cut(c): O(1) → RankCut
//!        ├── ExactContext(c₁)    ─┐ borrow; no private sorts,
//!        ├── ExactContext(c₂)     │ no per-context OnceLock cells
//!        ├── GroupedContext(c₁)  ─┘
//!        └── outcome(cut, selected) — the one metric computation
//! ```
//!
//! Because both engines resolve their cutoffs through the same rank
//! table and score their selections through the same
//! [`outcome`](SweepContext::outcome), a cell's [`RunOutcome`] is a
//! pure function of its selected index stream — which the engines make
//! bit-identical (see [`super::grouped`]).
//!
//! The snapshot is pinned for the context's lifetime: cells cloned from
//! one `SweepContext` share the same `Arc` (a clone is a refcount
//! bump), so every cell of a sweep reads the same epoch of the dataset
//! even if a live owner elsewhere publishes newer snapshots.

use std::path::Path;
use std::sync::Arc;

use crate::simulate::RunOutcome;
use dp_data::persist::{peek_scores_digest, scores_digest};
use dp_data::{GroupedSnapshot, RankCut, ScoreVector};

/// How a [`SweepContext::load_or_build`] call obtained its context.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContextSetup {
    /// The context was sorted from the raw scores (and persisted).
    Cold,
    /// The context was decoded from the persisted cache; no sort ran.
    Warm,
}

/// Per-dataset state shared by every `(engine, algorithm, c)` cell of a
/// sweep: the index-preserving grouped score runs and their `O(1)` rank
/// table, behind an `Arc` so clones share one allocation. Construction
/// performs the dataset's one and only full score sort (reusing
/// [`ScoreVector`]'s cached snapshot when present) — or skips it
/// entirely on a warm [`load_or_build`](Self::load_or_build).
#[derive(Debug, Clone, PartialEq)]
pub struct SweepContext {
    groups: Arc<GroupedSnapshot>,
}

impl SweepContext {
    /// Builds the context from a score vector — the single sort of the
    /// sweep (shared with the vector's snapshot cache).
    pub fn new(scores: &ScoreVector) -> Self {
        Self {
            groups: scores.grouped_scores(),
        }
    }

    /// Wraps an already-published snapshot (e.g. from a
    /// [`LiveScores`](dp_data::LiveScores) owner) without any sort.
    pub fn from_snapshot(snapshot: Arc<GroupedSnapshot>) -> Self {
        Self { groups: snapshot }
    }

    /// Loads the persisted context at `path` when it matches `scores`
    /// (warm start: the sort is skipped and the decoded context is
    /// bit-identical to a cold build); otherwise sorts cold and
    /// (re)writes the cache for the next invocation.
    ///
    /// Staleness and corruption are handled by the snapshot codec: a
    /// missing file, a failed header CRC or payload digest, or a
    /// `scores_digest` that no longer matches the live scores all fall
    /// back to the cold path.
    ///
    /// # Errors
    /// Only on failing to *write* the cache after a cold build; decode
    /// failures are silent cache misses.
    pub fn load_or_build(
        path: &Path,
        scores: &ScoreVector,
    ) -> std::io::Result<(Self, ContextSetup)> {
        let want = scores_digest(scores.as_slice());
        if let Ok(bytes) = std::fs::read(path) {
            if peek_scores_digest(&bytes) == Ok(want) {
                if let Ok(snapshot) = GroupedSnapshot::from_bytes(&bytes) {
                    return Ok((Self::from_snapshot(Arc::new(snapshot)), ContextSetup::Warm));
                }
            }
        }
        let context = Self::new(scores);
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, context.groups.to_bytes())?;
        Ok((context, ContextSetup::Cold))
    }

    /// The shared grouped score runs.
    pub fn groups(&self) -> &GroupedSnapshot {
        &self.groups
    }

    /// The shared snapshot handle (cheap to clone; pins the epoch).
    pub fn snapshot(&self) -> &Arc<GroupedSnapshot> {
        &self.groups
    }

    /// Number of items in the dataset.
    pub fn len_items(&self) -> usize {
        self.groups.len_items()
    }

    /// Resolves cutoff `c` against the shared rank table in `O(1)`:
    /// effective size, §6 threshold, and top-`c` score sum — no
    /// re-sort, no `O(n)` pass.
    pub fn cut(&self, c: usize) -> RankCut {
        self.groups.rank_cut(c)
    }

    /// The exact top-`c` indices as a zero-copy prefix of the shared
    /// sorted order (decreasing score, ties by smaller index). Growing
    /// `c` extends the slice without reshuffling it — the
    /// prefix-stability contract contexts at different `c` rely on.
    pub fn true_top(&self, c: usize) -> &[u32] {
        self.groups.top_c(c)
    }

    /// Scores one run's selection into the §6 metrics, identically for
    /// every engine: FNR from rank membership against the shared order,
    /// SER from group-resolved scores over the rank table's top sum.
    /// Engines that emit the same index stream therefore report
    /// bit-identical outcomes.
    pub fn outcome(&self, cut: &RankCut, selected: &[usize]) -> RunOutcome {
        let fnr = if cut.c_eff == 0 {
            0.0
        } else {
            let hits = selected
                .iter()
                .filter(|&&i| self.groups.is_top(i, cut.c_eff))
                .count();
            (cut.c_eff - hits) as f64 / cut.c_eff as f64
        };
        let ser = if cut.top_sum <= 0.0 {
            0.0
        } else {
            let sel_sum: f64 = selected.iter().map(|&i| self.groups.score_of_item(i)).sum();
            (1.0 - sel_sum / cut.top_sum).clamp(0.0, 1.0)
        };
        RunOutcome { fnr, ser }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{false_negative_rate, score_error_rate};

    fn sv(v: &[f64]) -> ScoreVector {
        ScoreVector::new(v.to_vec()).unwrap()
    }

    #[test]
    fn outcome_matches_reference_metrics() {
        // The shared outcome computation must agree with the crate's
        // reference metric functions (HashSet membership, raw-slice
        // sums) on arbitrary selections — same sets, same ratios.
        let v: Vec<f64> = (0..60).map(|i| f64::from((i * 17) % 23)).collect();
        let scores = sv(&v);
        let ctx = SweepContext::new(&scores);
        for c in [1usize, 5, 23, 60, 100] {
            let cut = ctx.cut(c);
            let true_top = scores.top_c(c);
            for sel in [
                vec![],
                vec![0, 1, 2],
                (0..30).collect::<Vec<_>>(),
                true_top.clone(),
                vec![59, 58, 3],
            ] {
                let got = ctx.outcome(&cut, &sel);
                let want_fnr = false_negative_rate(&sel, &true_top);
                let want_ser = score_error_rate(&sel, &true_top, scores.as_slice());
                assert!(
                    (got.fnr - want_fnr).abs() < 1e-12,
                    "c={c} sel={sel:?}: fnr {} vs {}",
                    got.fnr,
                    want_fnr
                );
                assert!(
                    (got.ser - want_ser).abs() < 1e-9,
                    "c={c} sel={sel:?}: ser {} vs {}",
                    got.ser,
                    want_ser
                );
            }
        }
    }

    #[test]
    fn true_top_is_prefix_stable_as_c_grows_within_one_context() {
        // The satellite contract: a shared SweepContext hands every c
        // the same underlying order, so growing c extends the exact
        // top-c — it never reshuffles it. (Per-context top-c sorts gave
        // no such guarantee across c.)
        let v: Vec<f64> = (0..120).map(|i| f64::from((i * 7) % 31)).collect();
        let ctx = SweepContext::new(&sv(&v));
        let full = ctx.true_top(v.len()).to_vec();
        for c in 0..=v.len() {
            assert_eq!(ctx.true_top(c), &full[..c], "c={c}");
        }
        // And the rank cuts are consistent with the prefix they gate.
        for c in 1..=v.len() {
            let cut = ctx.cut(c);
            assert_eq!(cut.c_eff, c);
            let sum: f64 = ctx.true_top(c).iter().map(|&i| v[i as usize]).sum();
            assert!((cut.top_sum - sum).abs() < 1e-9, "c={c}");
        }
    }

    #[test]
    fn outcome_of_the_true_top_is_zero_error() {
        let v = vec![9.0, 9.0, 5.0, 5.0, 1.0];
        let ctx = SweepContext::new(&sv(&v));
        for c in 1..=5 {
            let cut = ctx.cut(c);
            let sel: Vec<usize> = ctx.true_top(c).iter().map(|&i| i as usize).collect();
            let out = ctx.outcome(&cut, &sel);
            assert_eq!(out.fnr, 0.0, "c={c}");
            assert_eq!(out.ser, 0.0, "c={c}");
        }
    }

    #[test]
    fn clones_share_one_pinned_snapshot() {
        let ctx = SweepContext::new(&sv(&[4.0, 1.0, 4.0, 2.0]));
        let cell = ctx.clone();
        assert!(Arc::ptr_eq(ctx.snapshot(), cell.snapshot()));
    }

    #[test]
    fn warm_load_is_bit_identical_to_cold_build_and_skips_the_sort() {
        // The tentpole's warm-start contract, pinned: a second
        // load_or_build against the persisted context reports Warm and
        // yields a context whose every structural table is bit-equal to
        // the cold build's.
        let dir =
            std::env::temp_dir().join(format!("svt-ctx-test-{}-{}", std::process::id(), line!()));
        let path = dir.join("warm.ctx");
        let v: Vec<f64> = (0..4000).map(|i| f64::from((i * 131) % 37)).collect();

        let (cold, how_cold) = SweepContext::load_or_build(&path, &sv(&v)).unwrap();
        assert_eq!(how_cold, ContextSetup::Cold);
        // Fresh ScoreVector: the warm path cannot lean on an in-memory
        // snapshot cache.
        let (warm, how_warm) = SweepContext::load_or_build(&path, &sv(&v)).unwrap();
        assert_eq!(how_warm, ContextSetup::Warm);
        assert_eq!(warm, cold);
        // Bit-level checks beyond PartialEq: rank cuts and mass agree
        // bitwise at several cutoffs.
        for c in [1usize, 7, 100, 3999] {
            assert_eq!(
                warm.cut(c).threshold.to_bits(),
                cold.cut(c).threshold.to_bits()
            );
            assert_eq!(warm.cut(c).top_sum.to_bits(), cold.cut(c).top_sum.to_bits());
        }

        // A changed dataset is a cache miss: cold again, cache rewritten.
        let mut v2 = v.clone();
        v2[17] += 1.0;
        let (_, how_changed) = SweepContext::load_or_build(&path, &sv(&v2)).unwrap();
        assert_eq!(how_changed, ContextSetup::Cold);
        let (_, how_rewarm) = SweepContext::load_or_build(&path, &sv(&v2)).unwrap();
        assert_eq!(how_rewarm, ContextSetup::Warm);

        // A corrupted cache is a silent miss, then self-heals.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let (_, how_corrupt) = SweepContext::load_or_build(&path, &sv(&v2)).unwrap();
        assert_eq!(how_corrupt, ContextSetup::Cold);

        std::fs::remove_dir_all(&dir).ok();
    }
}
