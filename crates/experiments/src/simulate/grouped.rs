//! The grouped engine: an index-level bit-for-bit mirror of the exact
//! engine, driven entirely by the dataset's shared [`GroupedSnapshot`]
//! runs.
//!
//! ## What "grouped" means after the unification
//!
//! Historically this engine sampled *aggregate counts* — per-group
//! binomial candidates, multivariate-hypergeometric acceptance — which
//! was distribution-equivalent to the exact traversal but only
//! comparable to it statistically, and structurally unable to say
//! *which* items were selected. It now works at the index level, on the
//! same lazily shuffled traversal as the exact engine, with one
//! difference: **it never touches the raw score slice**. Every examined
//! item's score is resolved through the shared grouped runs
//! (`position → group → score`, `O(log G)`), and every `c`-dependent
//! quantity (threshold, top membership, top sum) comes from the shared
//! rank table.
//!
//! ## Why the index streams are bit-identical
//!
//! Viewed through the groups, one traversal step is a *member-weighted
//! group draw plus a uniform member expansion*: drawing a uniform
//! remaining slot of the implicit permutation ([`SparseOrder`]) picks
//! score-group `g` with probability `remaining_g / remaining_total`,
//! and the generation-stamped displacement-map swap inside it resolves
//! which concrete member of `g` that slot currently holds — the same
//! sparse swap machinery (and the same map type) the grouped EM sampler
//! [`EmTopC::select_grouped_into`] uses for its within-group expansion.
//! Both engines run this identical protocol (svt-core's
//! [`ScoreSource`]-generic streaming paths), and a score group stores
//! the `==`-equal value of every member's raw score, so each
//! comparison `q + ν ≥ T + ρ` branches identically under either score
//! resolution. Same draws, same branches ⇒ the grouped engine emits
//! **the identical index stream** as the exact engine for the same
//! `(cell seed, run index)` — for SVT-S, SVT-ReTr, SVT-DPBook (whose
//! per-⊤ threshold refresh forced the old aggregate engine to refuse
//! it; an index-level traversal handles it naturally) and EM (both
//! engines call the same grouped order-statistics sampler).
//!
//! That bit-comparability is the point: the two engines derive each
//! examined item's score through independent data paths (raw slice vs
//! sort-derived runs + inverse rank table), so a single differing
//! selection anywhere in a sweep now fails the equivalence tests
//! loudly, instead of hiding inside statistical tolerance.
//!
//! [`SparseOrder`]: svt_core::SparseOrder
//! [`ScoreSource`]: svt_core::ScoreSource
//! [`EmTopC::select_grouped_into`]: svt_core::em_select::EmTopC::select_grouped_into

use crate::simulate::{retraversal_config, RunOutcome, SweepContext};
use crate::spec::AlgorithmSpec;
use dp_data::{GroupedSnapshot, RankCut};
use dp_mechanisms::DpRng;
use svt_core::alg::Alg2;
use svt_core::em_select::EmTopC;
use svt_core::noninteractive::SvtSelectConfig;
use svt_core::retraversal::svt_retraversal_from;
use svt_core::streaming::{
    exp_noise_select_from, revisited_select_from, select_streaming_from, svt_select_from,
    RunScratch,
};
use svt_core::Result;

/// Precomputed per-`(dataset, c)` state for the grouped engine: a
/// borrow of the sweep-shared grouped runs plus the `O(log G)`-resolved
/// cutoff. Construction performs no sort and no `O(n)` pass.
#[derive(Debug, Clone)]
pub struct GroupedContext<'a> {
    sweep: &'a SweepContext,
    cut: RankCut,
    c: usize,
}

impl<'a> GroupedContext<'a> {
    /// Builds the context against the dataset's shared sweep state.
    pub fn new(sweep: &'a SweepContext, c: usize) -> Self {
        Self {
            cut: sweep.cut(c),
            sweep,
            c,
        }
    }

    /// The §6 threshold this context uses (bit-identical to the exact
    /// engine's — both read the shared rank table).
    pub fn threshold(&self) -> f64 {
        self.cut.threshold
    }

    /// Sum of the true top-`c` scores.
    pub fn top_sum(&self) -> f64 {
        self.cut.top_sum
    }

    /// The shared grouped score runs this engine reads from.
    pub fn groups(&self) -> &GroupedSnapshot {
        self.sweep.groups()
    }

    /// Executes one run of `alg` and returns its metrics; the selected
    /// index stream is left in [`RunScratch::selected`], bit-identical
    /// to what the exact engine emits from the same generator state.
    ///
    /// # Errors
    /// Propagates configuration validation from the algorithm wrappers.
    pub fn run_once_into(
        &self,
        alg: &AlgorithmSpec,
        epsilon: f64,
        rng: &mut DpRng,
        scratch: &mut RunScratch,
    ) -> Result<RunOutcome> {
        let groups = self.sweep.groups();
        let threshold = self.cut.threshold;
        match alg {
            AlgorithmSpec::DpBook => {
                let mut alg2 = Alg2::new(epsilon, 1.0, self.c, rng)?;
                select_streaming_from(&mut alg2, groups, threshold, rng, scratch)?;
            }
            AlgorithmSpec::Standard { ratio } => {
                let cfg = SvtSelectConfig::counting(epsilon, self.c, *ratio);
                svt_select_from(groups, threshold, &cfg, rng, scratch)?;
            }
            AlgorithmSpec::Retraversal { ratio, increment_d } => {
                let cfg = retraversal_config(epsilon, self.c, *ratio, *increment_d);
                svt_retraversal_from(groups, threshold, &cfg, rng, scratch)?;
            }
            AlgorithmSpec::Em => {
                EmTopC::new(epsilon, self.c, 1.0, true)?
                    .select_grouped_into(groups, rng, scratch)?;
            }
            AlgorithmSpec::Revisited { ratio } => {
                let cfg = SvtSelectConfig::counting(epsilon, self.c, *ratio);
                revisited_select_from(groups, threshold, &cfg, rng, scratch)?;
            }
            AlgorithmSpec::ExpNoise { ratio } => {
                let cfg = SvtSelectConfig::counting(epsilon, self.c, *ratio);
                exp_noise_select_from(groups, threshold, &cfg, rng, scratch)?;
            }
        }
        Ok(self.sweep.outcome(&self.cut, scratch.selected()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate::exact::ExactContext;
    use dp_data::ScoreVector;
    use svt_core::allocation::BudgetRatio;

    fn toy_scores() -> ScoreVector {
        let mut v = vec![];
        for i in 0..60u32 {
            v.push(match i {
                0..=4 => 1000.0,
                5..=14 => 200.0,
                _ => 10.0,
            });
        }
        ScoreVector::new(v).unwrap()
    }

    fn all_algorithms() -> Vec<AlgorithmSpec> {
        vec![
            AlgorithmSpec::DpBook,
            AlgorithmSpec::Standard {
                ratio: BudgetRatio::OneToOne,
            },
            AlgorithmSpec::Standard {
                ratio: BudgetRatio::OneToCTwoThirds,
            },
            AlgorithmSpec::Retraversal {
                ratio: BudgetRatio::OneToCTwoThirds,
                increment_d: 2.0,
            },
            AlgorithmSpec::Em,
            AlgorithmSpec::Revisited {
                ratio: BudgetRatio::OneToCTwoThirds,
            },
            AlgorithmSpec::ExpNoise {
                ratio: BudgetRatio::OneToCTwoThirds,
            },
        ]
    }

    #[test]
    fn context_resolves_cutoff_from_the_shared_rank_table() {
        let scores = toy_scores();
        let sweep = SweepContext::new(&scores);
        let ctx = GroupedContext::new(&sweep, 8);
        // top_sum = 5·1000 + 3·200.
        assert!((ctx.top_sum() - 5600.0).abs() < 1e-9);
        // threshold: 8th and 9th highest are both 200.
        assert!((ctx.threshold() - 200.0).abs() < 1e-9);
        // Straddling cut: 5th highest = 1000, 6th = 200 → 600.
        let ctx = GroupedContext::new(&sweep, 5);
        assert!((ctx.threshold() - 600.0).abs() < 1e-9);
    }

    #[test]
    fn every_algorithm_is_bit_identical_to_the_exact_engine() {
        // The tentpole contract, pinned at the context level: for every
        // algorithm — including SVT-DPBook, which the old aggregate
        // engine had to refuse — the grouped mirror emits the identical
        // index stream and identical metrics from the same generator
        // state, run after run on a shared scratch.
        let scores = toy_scores();
        let sweep = SweepContext::new(&scores);
        for c in [1usize, 5, 8, 30, 60] {
            let exact = ExactContext::new(&scores, &sweep, c);
            let grouped = GroupedContext::new(&sweep, c);
            for alg in &all_algorithms() {
                let mut rng_e = DpRng::seed_from_u64(4051 + c as u64);
                let mut rng_g = DpRng::seed_from_u64(4051 + c as u64);
                let mut scratch_e = RunScratch::new();
                let mut scratch_g = RunScratch::new();
                for run in 0..25 {
                    let e = exact
                        .run_once_into(alg, 0.3, &mut rng_e, &mut scratch_e)
                        .unwrap();
                    let g = grouped
                        .run_once_into(alg, 0.3, &mut rng_g, &mut scratch_g)
                        .unwrap();
                    assert_eq!(
                        scratch_e.selected(),
                        scratch_g.selected(),
                        "{alg:?} c={c} run={run}: index streams diverged"
                    );
                    assert_eq!(e, g, "{alg:?} c={c} run={run}: outcomes diverged");
                }
                // Identical randomness consumed throughout: lockstep.
                assert_eq!(rng_e.next_u64(), rng_g.next_u64(), "{alg:?} c={c}");
            }
        }
    }

    #[test]
    fn dpbook_is_now_supported() {
        // The per-⊤ threshold refresh only broke aggregate count
        // sampling; the index-level mirror traverses items one at a
        // time and handles it like any other variant.
        let scores = toy_scores();
        let sweep = SweepContext::new(&scores);
        let ctx = GroupedContext::new(&sweep, 5);
        let mut rng = DpRng::seed_from_u64(709);
        let mut scratch = RunScratch::new();
        let out = ctx
            .run_once_into(&AlgorithmSpec::DpBook, 0.1, &mut rng, &mut scratch)
            .unwrap();
        assert!((0.0..=1.0).contains(&out.ser));
        assert!((0.0..=1.0).contains(&out.fnr));
    }

    #[test]
    fn generous_budget_gives_zero_error() {
        let scores = toy_scores();
        let sweep = SweepContext::new(&scores);
        let ctx = GroupedContext::new(&sweep, 5);
        let mut rng = DpRng::seed_from_u64(719);
        let mut scratch = RunScratch::new();
        for alg in [
            AlgorithmSpec::Standard {
                ratio: BudgetRatio::OneToOne,
            },
            AlgorithmSpec::Em,
        ] {
            let out = ctx
                .run_once_into(&alg, 500.0, &mut rng, &mut scratch)
                .unwrap();
            assert_eq!(out.fnr, 0.0, "{alg:?}");
            assert_eq!(out.ser, 0.0, "{alg:?}");
        }
    }

    #[test]
    fn metrics_stay_in_unit_interval_at_tiny_budget() {
        let scores = toy_scores();
        let sweep = SweepContext::new(&scores);
        let ctx = GroupedContext::new(&sweep, 10);
        let mut rng = DpRng::seed_from_u64(727);
        let mut scratch = RunScratch::new();
        for alg in all_algorithms() {
            for _ in 0..20 {
                let out = ctx
                    .run_once_into(&alg, 0.01, &mut rng, &mut scratch)
                    .unwrap();
                assert!((0.0..=1.0).contains(&out.fnr));
                assert!((0.0..=1.0).contains(&out.ser));
            }
        }
    }

    #[test]
    fn c_beyond_population_is_clamped() {
        let scores = toy_scores();
        let sweep = SweepContext::new(&scores);
        let ctx = GroupedContext::new(&sweep, 1000);
        let mut rng = DpRng::seed_from_u64(733);
        let mut scratch = RunScratch::new();
        let out = ctx
            .run_once_into(&AlgorithmSpec::Em, 500.0, &mut rng, &mut scratch)
            .unwrap();
        assert_eq!(scratch.selected().len(), 60);
        assert_eq!(out.fnr, 0.0);
    }

    #[test]
    fn scratch_reuse_across_algorithms_is_clean() {
        // The sweep-runner pattern: one scratch, alternating algorithms
        // and engines, must not leak state between runs.
        let scores = toy_scores();
        let sweep = SweepContext::new(&scores);
        let ctx = GroupedContext::new(&sweep, 8);
        let fresh = |alg: &AlgorithmSpec, seed: u64| {
            let mut rng = DpRng::seed_from_u64(seed);
            let mut scratch = RunScratch::new();
            ctx.run_once_into(alg, 0.4, &mut rng, &mut scratch).unwrap();
            scratch.selected().to_vec()
        };
        let mut shared = RunScratch::new();
        for seed in [11u64, 13, 17] {
            for alg in all_algorithms() {
                let mut rng = DpRng::seed_from_u64(seed);
                ctx.run_once_into(&alg, 0.4, &mut rng, &mut shared).unwrap();
                assert_eq!(
                    shared.selected(),
                    &fresh(&alg, seed)[..],
                    "{alg:?} seed={seed}"
                );
            }
        }
    }
}
