//! The grouped engine: distribution-equivalent fast sampling over tied
//! scores.
//!
//! ## Why this is exact (not an approximation)
//!
//! **SVT-S / SVT-ReTr.** Fix the threshold noise `ρ` (drawn once). Each
//! query `i` independently "crosses" — `q_i + ν_i ≥ T + ρ` — with
//! probability `p(q_i)` depending only on its score. Candidacy is
//! decided by noise that is independent of the traversal order, so in a
//! uniformly random order the accepted set is the first `c` candidates
//! = a **uniform `c`-subset of the candidate set**. Consequently:
//!
//! * per score-group, the candidate count is `Binomial(n_g, p_g)`;
//! * the accepted counts across groups are multivariate
//!   hypergeometric;
//! * within a group, accepted items are a uniform subset, so the number
//!   of true-top-`c` members among them is `Hypergeometric`.
//!
//! Retraversal repeats the same argument over the not-yet-selected
//! items with the same `ρ` and fresh `ν` — still groupable.
//!
//! **EM peeling.** `c` rounds of the Exponential Mechanism without
//! replacement are distributionally identical to assigning every item
//! an independent `Gumbel(φ_i, 1)` key (`φ_i = ε·q_i/(cΔ)` in monotonic
//! mode) and taking the `c` largest keys. Within a group the keys are
//! i.i.d., so the group's key order statistics can be generated lazily
//! in descending order (via descending uniform order statistics,
//! `U_(n) = V^{1/n}`, `U_(k−1) = U_(k)·V^{1/k}`), and a heap across
//! groups yields the global top-`c` in `O((G + c) log G)` — instead of
//! `O(c·N)` for millions of items.
//!
//! **SVT-DPBook is *not* groupable**: it refreshes `ρ` after every ⊤,
//! so candidacy depends on traversal position; [`GroupedContext`]
//! refuses it and the runner falls back to the exact engine.

use crate::metrics::{fnr_from_counts, ser_from_sums};
use crate::simulate::RunOutcome;
use crate::spec::AlgorithmSpec;
use dp_data::ScoreVector;
use dp_mechanisms::laplace::Laplace;
use dp_mechanisms::samplers::{sample_binomial, sample_hypergeometric};
use dp_mechanisms::{DpRng, Gumbel, GumbelMax, MechanismError};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use svt_core::noninteractive::SvtSelectConfig;
use svt_core::{Result, SvtError};

/// One score-group: `count` items sharing `score`, of which
/// `top_members` belong to the exact top-`c`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Group {
    /// The shared score.
    pub score: f64,
    /// Number of items with this score.
    pub count: u64,
    /// How many of them are in the true top-`c` (ties at the boundary
    /// are attributed here and resolved hypergeometrically at
    /// measurement time — any fixed tie-break gives the same metric
    /// distribution because tied items are exchangeable).
    pub top_members: u64,
}

/// Precomputed per-`(dataset, c)` state for the grouped engine.
#[derive(Debug, Clone)]
pub struct GroupedContext {
    groups: Vec<Group>,
    threshold: f64,
    top_sum: f64,
    c: usize,
}

impl GroupedContext {
    /// Builds the context from a score vector.
    pub fn new(scores: &ScoreVector, c: usize) -> Self {
        Self::from_groups(&scores.grouped(), c)
    }

    /// Builds the context from pre-grouped `(score, count)` pairs in
    /// decreasing score order (as produced by [`ScoreVector::grouped`]).
    pub fn from_groups(grouped: &[(f64, u64)], c: usize) -> Self {
        let total_items: u64 = grouped.iter().map(|&(_, n)| n).sum();
        let c_eff = (c as u64).min(total_items);
        // Assign top-c membership greedily down the sorted groups.
        let mut remaining = c_eff;
        let mut groups = Vec::with_capacity(grouped.len());
        let mut top_sum = 0.0;
        for &(score, count) in grouped {
            let top_members = remaining.min(count);
            remaining -= top_members;
            top_sum += top_members as f64 * score;
            groups.push(Group {
                score,
                count,
                top_members,
            });
        }
        // Paper threshold: average of the c-th and (c+1)-th highest.
        let rank_score = |rank: u64| -> Option<f64> {
            if rank == 0 {
                return None;
            }
            let mut seen = 0u64;
            for &(score, count) in grouped {
                seen += count;
                if seen >= rank {
                    return Some(score);
                }
            }
            None
        };
        let at_c = rank_score(c_eff).unwrap_or(0.0);
        let threshold = match rank_score(c_eff + 1) {
            Some(next) => 0.5 * (at_c + next),
            None => at_c,
        };
        Self {
            groups,
            threshold,
            top_sum,
            c,
        }
    }

    /// The §6 threshold this context uses.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Sum of the true top-`c` scores.
    pub fn top_sum(&self) -> f64 {
        self.top_sum
    }

    /// The groups (decreasing score order).
    pub fn groups(&self) -> &[Group] {
        &self.groups
    }

    /// Executes one run of `alg` and returns its metrics.
    ///
    /// # Errors
    /// `InvalidParameter` for `SVT-DPBook` (not groupable); otherwise
    /// propagates configuration validation.
    pub fn run_once(
        &self,
        alg: &AlgorithmSpec,
        epsilon: f64,
        rng: &mut DpRng,
    ) -> Result<RunOutcome> {
        match alg {
            AlgorithmSpec::DpBook => Err(SvtError::Mechanism(MechanismError::InvalidParameter(
                "SVT-DPBook refreshes the threshold noise per ⊤ and cannot be grouped; \
                 use the exact engine",
            ))),
            AlgorithmSpec::Standard { ratio } => self.run_svt(epsilon, *ratio, 0.0, 1, rng),
            AlgorithmSpec::Retraversal { ratio, increment_d } => {
                self.run_svt(epsilon, *ratio, *increment_d, 64, rng)
            }
            AlgorithmSpec::Em => self.run_em(epsilon, rng),
        }
    }

    /// Shared SVT-S / SVT-ReTr engine: `max_passes = 1` is plain SVT-S.
    fn run_svt(
        &self,
        epsilon: f64,
        ratio: svt_core::allocation::BudgetRatio,
        increment_d: f64,
        max_passes: usize,
        rng: &mut DpRng,
    ) -> Result<RunOutcome> {
        let cfg = SvtSelectConfig::counting(epsilon, self.c, ratio).to_standard()?;
        let rho = Laplace::new(cfg.threshold_noise_scale())
            .map_err(SvtError::from)?
            .sample(rng);
        let nu = Laplace::new(cfg.query_noise_scale()).map_err(SvtError::from)?;
        // SVT-ReTr raises the threshold by increment_d noise std-devs.
        let raised = self.threshold + increment_d * nu.std_dev();
        let noisy_threshold = raised + rho;

        // Per-group crossing probability: P[s + ν ≥ T' + ρ].
        let p: Vec<f64> = self
            .groups
            .iter()
            .map(|g| nu.survival(noisy_threshold - g.score))
            .collect();

        let mut remaining: Vec<u64> = self.groups.iter().map(|g| g.count).collect();
        let mut remaining_top: Vec<u64> = self.groups.iter().map(|g| g.top_members).collect();
        let mut selected = 0u64;
        let mut selected_sum = 0.0;
        let mut top_hits = 0u64;

        let c = self.c as u64;
        let mut passes = 0;
        while selected < c && passes < max_passes {
            passes += 1;
            // Candidate counts this pass.
            let mut candidates = Vec::with_capacity(self.groups.len());
            let mut total_candidates = 0u64;
            for (g, &n) in remaining.iter().enumerate() {
                let k = sample_binomial(n, p[g], rng).map_err(SvtError::from)?;
                total_candidates += k;
                candidates.push(k);
            }
            if total_candidates == 0 {
                if remaining.iter().all(|&n| n == 0) {
                    break;
                }
                continue;
            }
            let take = (c - selected).min(total_candidates);
            // Accepted = uniform `take`-subset of candidates: allocate
            // across groups sequentially (multivariate hypergeometric).
            let mut pool = total_candidates;
            let mut left = take;
            for (g, &k) in candidates.iter().enumerate() {
                if left == 0 {
                    break;
                }
                let j = sample_hypergeometric(pool, k, left, rng).map_err(SvtError::from)?;
                pool -= k;
                left -= j;
                if j == 0 {
                    continue;
                }
                // Accepted items are a uniform j-subset of the group's
                // remaining items: count true-top members among them.
                let hits = sample_hypergeometric(remaining[g], remaining_top[g], j, rng)
                    .map_err(SvtError::from)?;
                remaining[g] -= j;
                remaining_top[g] -= hits;
                selected += j;
                selected_sum += j as f64 * self.groups[g].score;
                top_hits += hits;
            }
        }
        Ok(RunOutcome {
            fnr: fnr_from_counts(top_hits, self.c),
            ser: ser_from_sums(selected_sum, self.top_sum),
        })
    }

    /// EM peeling via per-group descending Gumbel order statistics
    /// ([`GumbelMax`]) and a cross-group max-heap.
    fn run_em(&self, epsilon: f64, rng: &mut DpRng) -> Result<RunOutcome> {
        dp_mechanisms::error::check_epsilon(epsilon).map_err(SvtError::from)?;
        // Monotonic counting queries: φ = ε/(cΔ) · score with Δ = 1.
        let factor = epsilon / self.c as f64;

        struct GroupState {
            /// Lazy descending Gumbel(φ_g, 1) order statistics (`None`
            /// for a zero-count group, which can never win a round —
            /// callers of [`GroupedContext::from_groups`] may pass
            /// empty groups and they are simply skipped).
            keys: Option<GumbelMax>,
            /// items not yet selected.
            remaining: u64,
            /// true-top members not yet selected.
            remaining_top: u64,
        }

        #[derive(PartialEq)]
        struct HeapEntry {
            key: f64,
            group: usize,
        }
        impl Eq for HeapEntry {}
        impl PartialOrd for HeapEntry {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for HeapEntry {
            fn cmp(&self, other: &Self) -> Ordering {
                self.key
                    .total_cmp(&other.key)
                    .then(self.group.cmp(&other.group))
            }
        }

        let mut states: Vec<GroupState> = self
            .groups
            .iter()
            .map(|g| {
                let keys = if g.count == 0 {
                    None
                } else {
                    Some(
                        GumbelMax::new(
                            Gumbel::new(factor * g.score, 1.0).map_err(SvtError::from)?,
                            g.count,
                        )
                        .map_err(SvtError::from)?,
                    )
                };
                Ok(GroupState {
                    keys,
                    remaining: g.count,
                    remaining_top: g.top_members,
                })
            })
            .collect::<Result<_>>()?;

        let mut heap = BinaryHeap::with_capacity(states.len());
        for (g, s) in states.iter_mut().enumerate() {
            if let Some(key) = s.keys.as_mut().and_then(|k| k.next_key(rng)) {
                heap.push(HeapEntry { key, group: g });
            }
        }

        let mut selected = 0u64;
        let mut selected_sum = 0.0;
        let mut top_hits = 0u64;
        while selected < self.c as u64 {
            let Some(entry) = heap.pop() else {
                break; // pool exhausted
            };
            let g = entry.group;
            let s = &mut states[g];
            // The selected item is uniform among the group's
            // not-yet-selected items.
            let is_top = s.remaining_top > 0 && rng.index_u64(s.remaining) < s.remaining_top;
            if is_top {
                s.remaining_top -= 1;
                top_hits += 1;
            }
            s.remaining -= 1;
            selected += 1;
            selected_sum += self.groups[g].score;
            if let Some(key) = s.keys.as_mut().and_then(|k| k.next_key(rng)) {
                heap.push(HeapEntry { key, group: g });
            }
        }
        Ok(RunOutcome {
            fnr: fnr_from_counts(top_hits, self.c),
            ser: ser_from_sums(selected_sum, self.top_sum),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svt_core::allocation::BudgetRatio;

    fn toy_scores() -> ScoreVector {
        let mut v = vec![];
        for i in 0..60u32 {
            v.push(match i {
                0..=4 => 1000.0,
                5..=14 => 200.0,
                _ => 10.0,
            });
        }
        ScoreVector::new(v).unwrap()
    }

    #[test]
    fn context_assigns_top_membership_greedily() {
        let ctx = GroupedContext::new(&toy_scores(), 8);
        let groups = ctx.groups();
        assert_eq!(groups.len(), 3);
        assert_eq!(
            groups[0],
            Group {
                score: 1000.0,
                count: 5,
                top_members: 5
            }
        );
        assert_eq!(
            groups[1],
            Group {
                score: 200.0,
                count: 10,
                top_members: 3
            }
        );
        assert_eq!(groups[2].top_members, 0);
        // top_sum = 5·1000 + 3·200.
        assert!((ctx.top_sum() - 5600.0).abs() < 1e-9);
        // threshold: 8th and 9th highest are both 200.
        assert!((ctx.threshold() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn context_threshold_straddles_groups() {
        let ctx = GroupedContext::new(&toy_scores(), 5);
        // 5th highest = 1000, 6th = 200 → 600.
        assert!((ctx.threshold() - 600.0).abs() < 1e-9);
    }

    #[test]
    fn c_beyond_population_is_clamped() {
        let ctx = GroupedContext::new(&toy_scores(), 1000);
        let total_top: u64 = ctx.groups().iter().map(|g| g.top_members).sum();
        assert_eq!(total_top, 60);
    }

    #[test]
    fn zero_count_groups_are_skipped_not_rejected() {
        // from_groups is public and accepts (score, 0) pairs; every
        // algorithm must treat them as the empty groups they are.
        let ctx = GroupedContext::from_groups(&[(5.0, 3), (2.0, 0), (1.0, 4)], 2);
        let mut rng = DpRng::seed_from_u64(751);
        for alg in [
            AlgorithmSpec::Em,
            AlgorithmSpec::Standard {
                ratio: BudgetRatio::OneToOne,
            },
        ] {
            for _ in 0..20 {
                let out = ctx.run_once(&alg, 0.5, &mut rng).unwrap();
                assert!((0.0..=1.0).contains(&out.ser), "{alg:?}");
            }
        }
    }

    #[test]
    fn dpbook_is_rejected() {
        let ctx = GroupedContext::new(&toy_scores(), 5);
        let mut rng = DpRng::seed_from_u64(709);
        assert!(ctx.run_once(&AlgorithmSpec::DpBook, 0.1, &mut rng).is_err());
    }

    #[test]
    fn generous_budget_gives_zero_error() {
        let ctx = GroupedContext::new(&toy_scores(), 5);
        let mut rng = DpRng::seed_from_u64(719);
        for alg in [
            AlgorithmSpec::Standard {
                ratio: BudgetRatio::OneToOne,
            },
            AlgorithmSpec::Em,
        ] {
            let out = ctx.run_once(&alg, 500.0, &mut rng).unwrap();
            assert_eq!(out.fnr, 0.0, "{alg:?}");
            assert_eq!(out.ser, 0.0, "{alg:?}");
        }
    }

    #[test]
    fn metrics_stay_in_unit_interval_at_tiny_budget() {
        let ctx = GroupedContext::new(&toy_scores(), 10);
        let mut rng = DpRng::seed_from_u64(727);
        for alg in [
            AlgorithmSpec::Standard {
                ratio: BudgetRatio::OneToCTwoThirds,
            },
            AlgorithmSpec::Retraversal {
                ratio: BudgetRatio::OneToCTwoThirds,
                increment_d: 3.0,
            },
            AlgorithmSpec::Em,
        ] {
            for _ in 0..20 {
                let out = ctx.run_once(&alg, 0.01, &mut rng).unwrap();
                assert!((0.0..=1.0).contains(&out.fnr));
                assert!((0.0..=1.0).contains(&out.ser));
            }
        }
    }

    #[test]
    fn retraversal_selects_more_than_plain_svt_at_raised_threshold() {
        // With a raised threshold, plain SVT-S often under-fills; ReTr
        // must (weakly) reduce SER on average by filling to c.
        let ctx = GroupedContext::new(&toy_scores(), 10);
        let mut rng = DpRng::seed_from_u64(733);
        let runs = 300;
        let mean = |alg: &AlgorithmSpec, rng: &mut DpRng| -> f64 {
            (0..runs)
                .map(|_| ctx.run_once(alg, 0.4, rng).unwrap().ser)
                .sum::<f64>()
                / runs as f64
        };
        let plain_raised = mean(
            &AlgorithmSpec::Retraversal {
                ratio: BudgetRatio::OneToCTwoThirds,
                increment_d: 2.0,
            },
            &mut rng,
        );
        // Same raised threshold but only one pass: emulate by the plain
        // Standard at the *same* ctx (threshold unraised) is not a fair
        // comparison, so compare ReTr against itself capped to 1 pass
        // via a tiny helper: Standard with increment can't be expressed,
        // so instead assert ReTr's SER is reasonable on an easy
        // instance.
        assert!(plain_raised < 0.6, "ReTr SER {plain_raised}");
    }

    #[test]
    fn em_heap_engine_matches_direct_em_peeling_distribution() {
        // Small instance: compare mean SER between the heap engine and
        // svt-core's EmTopC (which is itself validated against exact EM
        // probabilities).
        let scores = toy_scores();
        let ctx = GroupedContext::new(&scores, 6);
        let em = svt_core::em_select::EmTopC::new(0.5, 6, 1.0, true).unwrap();
        let true_top = scores.top_c(6);
        let mut rng = DpRng::seed_from_u64(739);
        let runs = 4000;
        let mut heap_mean = 0.0;
        let mut direct_mean = 0.0;
        for _ in 0..runs {
            heap_mean += ctx.run_once(&AlgorithmSpec::Em, 0.5, &mut rng).unwrap().ser;
            let sel = em.select(scores.as_slice(), &mut rng).unwrap();
            direct_mean += crate::metrics::score_error_rate(&sel, &true_top, scores.as_slice());
        }
        heap_mean /= runs as f64;
        direct_mean /= runs as f64;
        assert!(
            (heap_mean - direct_mean).abs() < 0.02,
            "heap {heap_mean} vs direct {direct_mean}"
        );
    }

    #[test]
    fn svt_grouped_matches_exact_engine_distribution() {
        // The load-bearing equivalence: grouped SVT-S vs the faithful
        // per-query traversal, compared on mean SER and mean FNR.
        let scores = toy_scores();
        let c = 8;
        let grouped = GroupedContext::new(&scores, c);
        let exact = crate::simulate::exact::ExactContext::new(&scores, c);
        let alg = AlgorithmSpec::Standard {
            ratio: BudgetRatio::OneToCTwoThirds,
        };
        let mut rng = DpRng::seed_from_u64(743);
        let runs = 4000;
        let (mut gs, mut gf, mut es, mut ef) = (0.0, 0.0, 0.0, 0.0);
        for _ in 0..runs {
            let g = grouped.run_once(&alg, 0.3, &mut rng).unwrap();
            let e = exact.run_once(&alg, 0.3, &mut rng).unwrap();
            gs += g.ser;
            gf += g.fnr;
            es += e.ser;
            ef += e.fnr;
        }
        let (gs, gf, es, ef) = (
            gs / runs as f64,
            gf / runs as f64,
            es / runs as f64,
            ef / runs as f64,
        );
        assert!((gs - es).abs() < 0.02, "SER: grouped {gs} vs exact {es}");
        assert!((gf - ef).abs() < 0.02, "FNR: grouped {gf} vs exact {ef}");
    }
}
