//! The faithful per-query engine: shuffle, stream, compare — exactly
//! the paper's protocol, built directly on `svt-core`'s streaming
//! algorithms.
//!
//! The engine reads each examined item's score straight off the raw
//! slice; everything `c`-dependent (threshold, effective size, top-`c`,
//! metric scoring) comes from the dataset's shared [`SweepContext`]
//! rank table, so constructing a context for a new `(algorithm, c)`
//! cell costs `O(log G + c)` — no private sort, no `O(n)` pass, no
//! per-context lazy-grouping cells.

use crate::simulate::{retraversal_config, RunOutcome, SweepContext};
use crate::spec::AlgorithmSpec;
use dp_data::{RankCut, ScoreVector};
use dp_mechanisms::DpRng;
use svt_core::alg::{Alg2, ExpNoiseSvt, SvtRevisited};
use svt_core::em_select::EmTopC;
use svt_core::noninteractive::{dpbook_select, select_with, svt_select, SvtSelectConfig};
use svt_core::retraversal::{svt_retraversal, svt_retraversal_into};
use svt_core::streaming::{
    exp_noise_select_from, revisited_select_from, select_streaming, svt_select_into, RunScratch,
};
use svt_core::Result;

/// Precomputed per-`(dataset, c)` state for the exact engine.
///
/// Borrows the dataset's scores and its sweep-shared [`SweepContext`]
/// instead of cloning or re-deriving anything — building a context for
/// a new `(algorithm, c)` cell over AOL's 2,290,685 items resolves the
/// cutoff against the shared rank table (`O(log G)`) and copies the
/// `c`-long top prefix, so one prepared dataset serves every cell of a
/// sweep with exactly one score sort among them.
#[derive(Debug, Clone)]
pub struct ExactContext<'a> {
    scores: &'a [f64],
    sweep: &'a SweepContext,
    cut: RankCut,
    true_top: Vec<usize>,
    c: usize,
}

impl<'a> ExactContext<'a> {
    /// Builds the context: cutoff resolution and the §6 threshold come
    /// from `sweep`'s shared rank table (the average of the `c`-th and
    /// `(c+1)`-th highest scores), the exact top-`c` from its shared
    /// sorted order.
    pub fn new(scores: &'a ScoreVector, sweep: &'a SweepContext, c: usize) -> Self {
        debug_assert_eq!(scores.len(), sweep.len_items(), "context/dataset mismatch");
        Self {
            scores: scores.as_slice(),
            cut: sweep.cut(c),
            true_top: sweep.true_top(c).iter().map(|&i| i as usize).collect(),
            sweep,
            c,
        }
    }

    /// The threshold in force.
    pub fn threshold(&self) -> f64 {
        self.cut.threshold
    }

    /// The exact top-`c` indices (decreasing score, ties by smaller
    /// index — a copy of the shared order's prefix).
    pub fn true_top(&self) -> &[usize] {
        &self.true_top
    }

    fn outcome(&self, selected: &[usize]) -> RunOutcome {
        self.sweep.outcome(&self.cut, selected)
    }

    /// Executes one run of `alg` through the scalar reference path
    /// (fresh allocations, eager full shuffle, per-draw noise) and
    /// returns its metrics.
    ///
    /// Kept as the baseline the batched pipeline is benchmarked and
    /// distribution-tested against; the sweep runner uses
    /// [`run_once_into`](Self::run_once_into).
    ///
    /// # Errors
    /// Propagates configuration validation from the algorithm wrappers.
    pub fn run_once(
        &self,
        alg: &AlgorithmSpec,
        epsilon: f64,
        rng: &mut DpRng,
    ) -> Result<RunOutcome> {
        let threshold = self.cut.threshold;
        let selected = match alg {
            AlgorithmSpec::DpBook => {
                dpbook_select(self.scores, threshold, epsilon, self.c, 1.0, rng)?
            }
            AlgorithmSpec::Standard { ratio } => {
                let cfg = SvtSelectConfig::counting(epsilon, self.c, *ratio);
                svt_select(self.scores, threshold, &cfg, rng)?
            }
            AlgorithmSpec::Retraversal { ratio, increment_d } => {
                let cfg = retraversal_config(epsilon, self.c, *ratio, *increment_d);
                svt_retraversal(self.scores, threshold, &cfg, rng)?.selected
            }
            AlgorithmSpec::Em => {
                EmTopC::new(epsilon, self.c, 1.0, true)?.select(self.scores, rng)?
            }
            AlgorithmSpec::Revisited { ratio } => {
                let cfg = SvtSelectConfig::counting(epsilon, self.c, *ratio).to_standard()?;
                let mut alg = SvtRevisited::new(cfg, rng)?;
                select_with(&mut alg, self.scores, threshold, rng)?
            }
            AlgorithmSpec::ExpNoise { ratio } => {
                let cfg = SvtSelectConfig::counting(epsilon, self.c, *ratio).to_standard()?;
                let mut alg = ExpNoiseSvt::new(cfg, rng)?;
                select_with(&mut alg, self.scores, threshold, rng)?
            }
        };
        Ok(self.outcome(&selected))
    }

    /// Executes one run of `alg` through the zero-copy streaming path:
    /// sparse lazy Fisher–Yates up to the abort point, reusable
    /// `scratch` buffers, and block-batched noise — Laplace for the SVT
    /// variants, lazy per-group Gumbel order statistics
    /// ([`EmTopC::select_grouped_into`] over the sweep-shared grouped
    /// runs) for EM, so no path ever pays one draw per item.
    ///
    /// Samples the same output distribution as [`run_once`](Self::run_once);
    /// the SVT outputs are bit-identical for every noise batch size.
    ///
    /// # Errors
    /// Propagates configuration validation from the algorithm wrappers.
    pub fn run_once_into(
        &self,
        alg: &AlgorithmSpec,
        epsilon: f64,
        rng: &mut DpRng,
        scratch: &mut RunScratch,
    ) -> Result<RunOutcome> {
        let threshold = self.cut.threshold;
        match alg {
            AlgorithmSpec::DpBook => {
                let mut alg2 = Alg2::new(epsilon, 1.0, self.c, rng)?;
                select_streaming(&mut alg2, self.scores, threshold, rng, scratch)?;
            }
            AlgorithmSpec::Standard { ratio } => {
                let cfg = SvtSelectConfig::counting(epsilon, self.c, *ratio);
                svt_select_into(self.scores, threshold, &cfg, rng, scratch)?;
            }
            AlgorithmSpec::Retraversal { ratio, increment_d } => {
                let cfg = retraversal_config(epsilon, self.c, *ratio, *increment_d);
                svt_retraversal_into(self.scores, threshold, &cfg, rng, scratch)?;
            }
            AlgorithmSpec::Em => {
                EmTopC::new(epsilon, self.c, 1.0, true)?.select_grouped_into(
                    self.sweep.groups(),
                    rng,
                    scratch,
                )?;
            }
            AlgorithmSpec::Revisited { ratio } => {
                let cfg = SvtSelectConfig::counting(epsilon, self.c, *ratio);
                revisited_select_from(self.scores, threshold, &cfg, rng, scratch)?;
            }
            AlgorithmSpec::ExpNoise { ratio } => {
                let cfg = SvtSelectConfig::counting(epsilon, self.c, *ratio);
                exp_noise_select_from(self.scores, threshold, &cfg, rng, scratch)?;
            }
        }
        Ok(self.outcome(scratch.selected()))
    }

    /// Executes one EM run through the per-item-key sampler
    /// ([`EmTopC::select_into`]: one scratch-buffered Gumbel key per
    /// item, `O(n log c)`).
    ///
    /// Kept as the reference the grouped-exact EM path is
    /// distribution-tested and benchmarked against (`em_batched` in
    /// `bench_smoke`); [`run_once_into`](Self::run_once_into) routes EM
    /// to the grouped sampler instead.
    ///
    /// # Errors
    /// Propagates configuration validation from [`EmTopC`].
    pub fn run_once_em_ungrouped(
        &self,
        epsilon: f64,
        rng: &mut DpRng,
        scratch: &mut RunScratch,
    ) -> Result<RunOutcome> {
        EmTopC::new(epsilon, self.c, 1.0, true)?.select_into(self.scores, rng, scratch)?;
        Ok(self.outcome(scratch.selected()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svt_core::allocation::BudgetRatio;

    fn toy_scores() -> ScoreVector {
        // 40 items: 5 clear winners, a middle band, and a tail.
        let mut v = vec![];
        for i in 0..40u32 {
            v.push(match i {
                0..=4 => 1000.0 - i as f64,
                5..=14 => 200.0 - i as f64,
                _ => 10.0,
            });
        }
        ScoreVector::new(v).unwrap()
    }

    #[test]
    fn context_precomputes_paper_threshold() {
        let scores = toy_scores();
        let sweep = SweepContext::new(&scores);
        let ctx = ExactContext::new(&scores, &sweep, 5);
        // 5th highest = 996, 6th = 195 → threshold 595.5.
        assert!((ctx.threshold() - 595.5).abs() < 1e-9);
        assert_eq!(ctx.true_top(), &[0, 1, 2, 3, 4]);
    }

    #[test]
    fn streaming_path_matches_scalar_path_in_distribution() {
        // `run_once_into` is a lazier sampler of the same distribution
        // as `run_once`: mean SER over many runs must agree.
        let scores = toy_scores();
        let sweep = SweepContext::new(&scores);
        let ctx = ExactContext::new(&scores, &sweep, 5);
        let algs = [
            AlgorithmSpec::DpBook,
            AlgorithmSpec::Standard {
                ratio: BudgetRatio::OneToCTwoThirds,
            },
            AlgorithmSpec::Retraversal {
                ratio: BudgetRatio::OneToCTwoThirds,
                increment_d: 2.0,
            },
            AlgorithmSpec::Em,
            AlgorithmSpec::Revisited {
                ratio: BudgetRatio::OneToCTwoThirds,
            },
            AlgorithmSpec::ExpNoise {
                ratio: BudgetRatio::OneToCTwoThirds,
            },
        ];
        let runs = 400;
        let mut scratch = svt_core::streaming::RunScratch::new();
        for alg in &algs {
            let mut rng_a = DpRng::seed_from_u64(12345);
            let mut rng_b = DpRng::seed_from_u64(54321);
            let (mut new_ser, mut old_ser) = (0.0, 0.0);
            for _ in 0..runs {
                new_ser += ctx
                    .run_once_into(alg, 0.5, &mut rng_a, &mut scratch)
                    .unwrap()
                    .ser;
                old_ser += ctx.run_once(alg, 0.5, &mut rng_b).unwrap().ser;
            }
            let diff = (new_ser - old_ser).abs() / runs as f64;
            assert!(diff < 0.06, "{alg:?}: mean SER differs by {diff}");
        }
    }

    #[test]
    fn streaming_path_is_noise_batch_size_invariant() {
        let scores = toy_scores();
        let sweep = SweepContext::new(&scores);
        let ctx = ExactContext::new(&scores, &sweep, 5);
        let alg = AlgorithmSpec::Standard {
            ratio: BudgetRatio::OneToCTwoThirds,
        };
        let reference: Vec<RunOutcome> = {
            let mut rng = DpRng::seed_from_u64(777);
            let mut scratch = svt_core::streaming::RunScratch::with_noise_batch(1);
            (0..50)
                .map(|_| {
                    ctx.run_once_into(&alg, 0.5, &mut rng, &mut scratch)
                        .unwrap()
                })
                .collect()
        };
        for batch in [4usize, 256, 2048] {
            let mut rng = DpRng::seed_from_u64(777);
            let mut scratch = svt_core::streaming::RunScratch::with_noise_batch(batch);
            let got: Vec<RunOutcome> = (0..50)
                .map(|_| {
                    ctx.run_once_into(&alg, 0.5, &mut rng, &mut scratch)
                        .unwrap()
                })
                .collect();
            assert_eq!(got, reference, "batch {batch}");
        }
    }

    #[test]
    fn em_grouped_exact_path_matches_per_item_path_distribution() {
        // The default EM route (lazy per-group order statistics) and
        // the per-item-key reference sample the same distribution: mean
        // SER and FNR over many runs must agree.
        let scores = toy_scores();
        let sweep = SweepContext::new(&scores);
        let ctx = ExactContext::new(&scores, &sweep, 5);
        let runs = 3000;
        let mut scratch = RunScratch::new();
        let mut rng_a = DpRng::seed_from_u64(881);
        let mut rng_b = DpRng::seed_from_u64(883);
        let (mut gs, mut gf, mut us, mut uf) = (0.0, 0.0, 0.0, 0.0);
        for _ in 0..runs {
            let g = ctx
                .run_once_into(&AlgorithmSpec::Em, 0.5, &mut rng_a, &mut scratch)
                .unwrap();
            gs += g.ser;
            gf += g.fnr;
            let u = ctx
                .run_once_em_ungrouped(0.5, &mut rng_b, &mut scratch)
                .unwrap();
            us += u.ser;
            uf += u.fnr;
        }
        let n = runs as f64;
        assert!(
            (gs / n - us / n).abs() < 0.02,
            "SER grouped {} vs per-item {}",
            gs / n,
            us / n
        );
        assert!(
            (gf / n - uf / n).abs() < 0.02,
            "FNR grouped {} vs per-item {}",
            gf / n,
            uf / n
        );
    }

    #[test]
    fn all_algorithms_produce_metrics_in_range() {
        let scores = toy_scores();
        let sweep = SweepContext::new(&scores);
        let ctx = ExactContext::new(&scores, &sweep, 5);
        let mut rng = DpRng::seed_from_u64(683);
        let algs = [
            AlgorithmSpec::DpBook,
            AlgorithmSpec::Standard {
                ratio: BudgetRatio::OneToCTwoThirds,
            },
            AlgorithmSpec::Retraversal {
                ratio: BudgetRatio::OneToCTwoThirds,
                increment_d: 2.0,
            },
            AlgorithmSpec::Em,
            AlgorithmSpec::Revisited {
                ratio: BudgetRatio::OneToCTwoThirds,
            },
            AlgorithmSpec::ExpNoise {
                ratio: BudgetRatio::OneToCTwoThirds,
            },
        ];
        for alg in &algs {
            for _ in 0..5 {
                let out = ctx.run_once(alg, 0.5, &mut rng).unwrap();
                assert!((0.0..=1.0).contains(&out.fnr), "{alg:?} fnr {}", out.fnr);
                assert!((0.0..=1.0).contains(&out.ser), "{alg:?} ser {}", out.ser);
            }
        }
    }

    #[test]
    fn generous_budget_drives_errors_to_zero() {
        let scores = toy_scores();
        let sweep = SweepContext::new(&scores);
        let ctx = ExactContext::new(&scores, &sweep, 5);
        let mut rng = DpRng::seed_from_u64(691);
        for alg in [
            AlgorithmSpec::Standard {
                ratio: BudgetRatio::OneToOne,
            },
            AlgorithmSpec::Em,
        ] {
            let out = ctx.run_once(&alg, 500.0, &mut rng).unwrap();
            assert_eq!(out.fnr, 0.0, "{alg:?}");
            assert_eq!(out.ser, 0.0, "{alg:?}");
        }
    }

    #[test]
    fn tiny_budget_gives_large_errors_for_svt() {
        // ε = 0.001 at c = 5 on 40 items: noise scale swamps the score
        // separation; on average SER should be substantial.
        let scores = toy_scores();
        let sweep = SweepContext::new(&scores);
        let ctx = ExactContext::new(&scores, &sweep, 5);
        let mut rng = DpRng::seed_from_u64(701);
        let alg = AlgorithmSpec::Standard {
            ratio: BudgetRatio::OneToOne,
        };
        let mean_ser: f64 = (0..200)
            .map(|_| ctx.run_once(&alg, 0.001, &mut rng).unwrap().ser)
            .sum::<f64>()
            / 200.0;
        assert!(mean_ser > 0.3, "mean SER {mean_ser}");
    }
}
