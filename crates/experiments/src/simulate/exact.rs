//! The faithful per-query engine: shuffle, stream, compare — exactly
//! the paper's protocol, built directly on `svt-core`'s streaming
//! algorithms.
//!
//! This engine works for every algorithm (it *is* the algorithm); it is
//! the only engine valid for `SVT-DPBook`, whose per-⊤ threshold
//! refresh makes acceptance order-dependent and hence not groupable.

use crate::metrics::{false_negative_rate, score_error_rate};
use crate::simulate::RunOutcome;
use crate::spec::AlgorithmSpec;
use dp_data::ScoreVector;
use dp_mechanisms::DpRng;
use svt_core::em_select::EmTopC;
use svt_core::noninteractive::{dpbook_select, svt_select, SvtSelectConfig};
use svt_core::retraversal::{svt_retraversal, RetraversalConfig};
use svt_core::Result;

/// Precomputed per-`(dataset, c)` state for the exact engine.
#[derive(Debug, Clone)]
pub struct ExactContext {
    scores: Vec<f64>,
    true_top: Vec<usize>,
    threshold: f64,
    c: usize,
}

impl ExactContext {
    /// Builds the context: exact top-`c` and the §6 threshold (average
    /// of the `c`-th and `(c+1)`-th highest scores).
    pub fn new(scores: &ScoreVector, c: usize) -> Self {
        Self {
            scores: scores.as_slice().to_vec(),
            true_top: scores.top_c(c),
            threshold: scores.paper_threshold(c),
            c,
        }
    }

    /// The threshold in force.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The exact top-`c` indices.
    pub fn true_top(&self) -> &[usize] {
        &self.true_top
    }

    /// Executes one run of `alg` and returns its metrics.
    ///
    /// # Errors
    /// Propagates configuration validation from the algorithm wrappers.
    pub fn run_once(
        &self,
        alg: &AlgorithmSpec,
        epsilon: f64,
        rng: &mut DpRng,
    ) -> Result<RunOutcome> {
        let selected = match alg {
            AlgorithmSpec::DpBook => {
                dpbook_select(&self.scores, self.threshold, epsilon, self.c, 1.0, rng)?
            }
            AlgorithmSpec::Standard { ratio } => {
                let cfg = SvtSelectConfig::counting(epsilon, self.c, *ratio);
                svt_select(&self.scores, self.threshold, &cfg, rng)?
            }
            AlgorithmSpec::Retraversal { ratio, increment_d } => {
                let cfg = RetraversalConfig {
                    select: SvtSelectConfig::counting(epsilon, self.c, *ratio),
                    increment: *increment_d,
                    unit: svt_core::retraversal::IncrementUnit::NoiseStdDev,
                    max_passes: 64,
                };
                svt_retraversal(&self.scores, self.threshold, &cfg, rng)?.selected
            }
            AlgorithmSpec::Em => {
                EmTopC::new(epsilon, self.c, 1.0, true)?.select(&self.scores, rng)?
            }
        };
        Ok(RunOutcome {
            fnr: false_negative_rate(&selected, &self.true_top),
            ser: score_error_rate(&selected, &self.true_top, &self.scores),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svt_core::allocation::BudgetRatio;

    fn toy_scores() -> ScoreVector {
        // 40 items: 5 clear winners, a middle band, and a tail.
        let mut v = vec![];
        for i in 0..40u32 {
            v.push(match i {
                0..=4 => 1000.0 - i as f64,
                5..=14 => 200.0 - i as f64,
                _ => 10.0,
            });
        }
        ScoreVector::new(v).unwrap()
    }

    #[test]
    fn context_precomputes_paper_threshold() {
        let ctx = ExactContext::new(&toy_scores(), 5);
        // 5th highest = 996, 6th = 195 → threshold 595.5.
        assert!((ctx.threshold() - 595.5).abs() < 1e-9);
        assert_eq!(ctx.true_top(), &[0, 1, 2, 3, 4]);
    }

    #[test]
    fn all_algorithms_produce_metrics_in_range() {
        let scores = toy_scores();
        let ctx = ExactContext::new(&scores, 5);
        let mut rng = DpRng::seed_from_u64(683);
        let algs = [
            AlgorithmSpec::DpBook,
            AlgorithmSpec::Standard {
                ratio: BudgetRatio::OneToCTwoThirds,
            },
            AlgorithmSpec::Retraversal {
                ratio: BudgetRatio::OneToCTwoThirds,
                increment_d: 2.0,
            },
            AlgorithmSpec::Em,
        ];
        for alg in &algs {
            for _ in 0..5 {
                let out = ctx.run_once(alg, 0.5, &mut rng).unwrap();
                assert!((0.0..=1.0).contains(&out.fnr), "{alg:?} fnr {}", out.fnr);
                assert!((0.0..=1.0).contains(&out.ser), "{alg:?} ser {}", out.ser);
            }
        }
    }

    #[test]
    fn generous_budget_drives_errors_to_zero() {
        let scores = toy_scores();
        let ctx = ExactContext::new(&scores, 5);
        let mut rng = DpRng::seed_from_u64(691);
        for alg in [
            AlgorithmSpec::Standard {
                ratio: BudgetRatio::OneToOne,
            },
            AlgorithmSpec::Em,
        ] {
            let out = ctx.run_once(&alg, 500.0, &mut rng).unwrap();
            assert_eq!(out.fnr, 0.0, "{alg:?}");
            assert_eq!(out.ser, 0.0, "{alg:?}");
        }
    }

    #[test]
    fn tiny_budget_gives_large_errors_for_svt() {
        // ε = 0.001 at c = 5 on 40 items: noise scale swamps the score
        // separation; on average SER should be substantial.
        let scores = toy_scores();
        let ctx = ExactContext::new(&scores, 5);
        let mut rng = DpRng::seed_from_u64(701);
        let alg = AlgorithmSpec::Standard {
            ratio: BudgetRatio::OneToOne,
        };
        let mean_ser: f64 = (0..200)
            .map(|_| ctx.run_once(&alg, 0.001, &mut rng).unwrap().ser)
            .sum::<f64>()
            / 200.0;
        assert!(mean_ser > 0.3, "mean SER {mean_ser}");
    }
}
