//! Run engines: exact per-query traversal and its grouped bit-level
//! mirror.
//!
//! Both engines execute the **same draw protocol** over the **same
//! per-dataset [`SweepContext`]** — the exact engine reads scores from
//! the raw slice, the grouped engine resolves them through the shared
//! [`GroupedSnapshot`](dp_data::GroupedSnapshot) runs — so for every
//! algorithm they emit *bit-identical* index streams from the same
//! generator state. The equivalence argument (and what it buys as a
//! cross-check) lives in [`grouped`]; the runner's sweep-level tests
//! pin it selection-by-selection.

pub mod context;
pub mod exact;
pub mod grouped;

pub use context::{ContextSetup, SweepContext};

use svt_core::noninteractive::SvtSelectConfig;
use svt_core::retraversal::{IncrementUnit, RetraversalConfig};

/// The two §6 utility metrics for one run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunOutcome {
    /// False Negative Rate of this run's selection.
    pub fnr: f64,
    /// Score Error Rate of this run's selection.
    pub ser: f64,
}

/// The SVT-ReTr configuration the harness runs for a `(ε, c, ratio,
/// increment)` cell — one definition shared by both engines, so their
/// retraversal runs are parameterized identically by construction.
pub(crate) fn retraversal_config(
    epsilon: f64,
    c: usize,
    ratio: svt_core::allocation::BudgetRatio,
    increment_d: f64,
) -> RetraversalConfig {
    RetraversalConfig {
        select: SvtSelectConfig::counting(epsilon, c, ratio),
        increment: increment_d,
        unit: IncrementUnit::NoiseStdDev,
        max_passes: 64,
    }
}
