//! Run engines: exact per-query traversal vs. grouped sampling.
//!
//! Both engines sample from the **same output distribution** for the
//! algorithms they support; the grouped engine is simply a smarter
//! sampler that exploits tied scores (millions of AOL keywords share
//! the same integer support). The equivalence argument lives in
//! [`grouped`]; the agreement is checked statistically by the crate's
//! integration tests and the `ablation` bench.

pub mod exact;
pub mod grouped;

/// The two §6 utility metrics for one run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunOutcome {
    /// False Negative Rate of this run's selection.
    pub fnr: f64,
    /// Score Error Rate of this run's selection.
    pub ser: f64,
}
