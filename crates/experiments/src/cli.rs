//! Minimal command-line plumbing shared by the experiment binaries.
//!
//! Flags (all optional):
//!
//! * `--quick` — scaled-down grid (3 c-values, 10 runs) for smoke runs;
//! * `--runs N` — override the per-cell run count;
//! * `--seed S` — master seed;
//! * `--threads N` — worker threads (default: all cores);
//! * `--datasets a,b` — subset of `{BMS-POS, Kosarak, AOL, Zipf}`;
//! * `--trials N` — Monte-Carlo trials per audit side (`nonprivacy`);
//! * `--csv DIR` — also write each table as CSV into `DIR`.

use crate::report::Table;
use crate::runner::PreparedDataset;
use crate::spec::ExperimentConfig;
use dp_data::DatasetSpec;
use std::path::PathBuf;

/// Parsed command-line options.
#[derive(Debug, Clone, Default)]
pub struct CliArgs {
    /// `--quick`
    pub quick: bool,
    /// `--runs N`
    pub runs: Option<usize>,
    /// `--seed S`
    pub seed: Option<u64>,
    /// `--threads N`
    pub threads: Option<usize>,
    /// `--datasets a,b,c`
    pub datasets: Option<Vec<String>>,
    /// `--trials N`
    pub trials: Option<u64>,
    /// `--csv DIR`
    pub csv_dir: Option<PathBuf>,
}

/// Parses `std::env::args()`. Unknown flags abort with a usage message —
/// better to fail loudly than to silently run the wrong experiment.
pub fn parse_args() -> CliArgs {
    let mut out = CliArgs::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {flag}");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--quick" => out.quick = true,
            "--runs" => out.runs = Some(parse_or_exit(&value("--runs"), "--runs")),
            "--seed" => out.seed = Some(parse_or_exit(&value("--seed"), "--seed")),
            "--threads" => out.threads = Some(parse_or_exit(&value("--threads"), "--threads")),
            "--trials" => out.trials = Some(parse_or_exit(&value("--trials"), "--trials")),
            "--datasets" => {
                out.datasets = Some(
                    value("--datasets")
                        .split(',')
                        .map(|s| s.trim().to_owned())
                        .collect(),
                )
            }
            "--csv" => out.csv_dir = Some(PathBuf::from(value("--csv"))),
            other => {
                eprintln!(
                    "unknown flag {other}\nflags: --quick --runs N --seed S --threads N \
                     --datasets a,b --trials N --csv DIR"
                );
                std::process::exit(2);
            }
        }
    }
    out
}

fn parse_or_exit<T: std::str::FromStr>(s: &str, flag: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("invalid value {s:?} for {flag}");
        std::process::exit(2);
    })
}

/// Builds the experiment configuration implied by the flags.
pub fn resolve_config(args: &CliArgs) -> ExperimentConfig {
    let mut cfg = if args.quick {
        ExperimentConfig::quick()
    } else {
        ExperimentConfig::paper()
    };
    if let Some(runs) = args.runs {
        cfg.runs = runs;
    }
    if let Some(seed) = args.seed {
        cfg.seed = seed;
    }
    if let Some(threads) = args.threads {
        cfg.threads = threads;
    }
    cfg
}

/// Prepares the requested datasets (all four Table-1 workloads by
/// default).
pub fn resolve_datasets(args: &CliArgs) -> Vec<PreparedDataset> {
    match &args.datasets {
        None => crate::figures::prepare_all_datasets(),
        Some(names) => names
            .iter()
            .map(|name| {
                let spec = DatasetSpec::by_name(name).unwrap_or_else(|_| {
                    eprintln!("unknown dataset {name:?} (expected BMS-POS, Kosarak, AOL, Zipf)");
                    std::process::exit(2);
                });
                PreparedDataset::new(spec.name, spec.scores())
            })
            .collect(),
    }
}

/// Prints a table and optionally writes its CSV form.
pub fn emit(table: &Table, args: &CliArgs, file_stem: &str) {
    println!("{}", table.render());
    if let Some(dir) = &args.csv_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            return;
        }
        let path = dir.join(format!("{file_stem}.csv"));
        match table.write_csv(&path) {
            Ok(()) => eprintln!("wrote {}", path.display()),
            Err(e) => eprintln!("cannot write {}: {e}", path.display()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_config_applies_overrides() {
        let args = CliArgs {
            quick: true,
            runs: Some(3),
            seed: Some(9),
            threads: Some(2),
            ..CliArgs::default()
        };
        let cfg = resolve_config(&args);
        assert_eq!(cfg.runs, 3);
        assert_eq!(cfg.seed, 9);
        assert_eq!(cfg.threads, 2);
        assert_eq!(cfg.c_values, ExperimentConfig::quick().c_values);
    }

    #[test]
    fn resolve_datasets_honors_subset() {
        let args = CliArgs {
            datasets: Some(vec!["Zipf".into()]),
            ..CliArgs::default()
        };
        let data = resolve_datasets(&args);
        assert_eq!(data.len(), 1);
        assert_eq!(data[0].name, "Zipf");
    }
}
