//! Regenerates Figure 3 (top-300 score distributions, log-spaced ranks).

fn main() {
    let args = svt_experiments::cli::parse_args();
    svt_experiments::cli::emit(&svt_experiments::figures::figure3(300), &args, "figure3");
}
