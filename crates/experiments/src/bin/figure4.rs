//! Regenerates Figure 4: the interactive comparison (SVT-DPBook vs
//! SVT-S under four budget allocations), SER and FNR on all four
//! datasets. `--quick` runs the reduced grid.

fn main() {
    let args = svt_experiments::cli::parse_args();
    let config = svt_experiments::cli::resolve_config(&args);
    let datasets = svt_experiments::cli::resolve_datasets(&args);
    let started = std::time::Instant::now();
    match svt_experiments::figures::figure4(&datasets, &config) {
        Ok(panels) => {
            for panel in &panels {
                let stem = format!(
                    "figure4_{}_{}",
                    panel.dataset.to_lowercase().replace('-', "_"),
                    panel.metric.to_lowercase()
                );
                svt_experiments::cli::emit(&panel.table, &args, &stem);
            }
            eprintln!("figure4 completed in {:.1?}", started.elapsed());
        }
        Err(e) => {
            eprintln!("figure4 failed: {e}");
            std::process::exit(1);
        }
    }
}
