//! `bench_smoke` — short deterministic benchmark emitting `BENCH_svt.json`.
//!
//! Times two paper-style cells (`SVT-S-1:c^(2/3)` and `EM`, `c = 100`,
//! `ε = 0.1`) on synthetic power-law workloads at two sizes — a
//! mid-sized one and the AOL scale (2,290,685 items) — through the
//! engines:
//!
//! * `exact_scalar` / `em_peel` — the reference per-query paths (fresh
//!   allocations, eager full shuffle, per-draw noise; literal EM
//!   peeling);
//! * `exact_batched` / `em_batched` — the zero-copy streaming paths
//!   (reusable [`RunScratch`], sparse lazy Fisher–Yates, block-batched
//!   Laplace noise / scratch-buffered per-item Gumbel keys);
//! * `em_grouped_exact` — the exact engine's default EM route
//!   (`run_once_into`): lazy per-group Gumbel order statistics with
//!   index-preserving uniform expansion — `O(G + c)` draws;
//! * `svt_grouped_indexed` — the grouped engine, since schema 4 an
//!   index-level bit-for-bit mirror of the exact engine that resolves
//!   every examined item's score through the shared `GroupedScores`
//!   runs instead of the raw slice (the SVT cells are where the two
//!   engines genuinely differ: direct slice reads vs `O(log G)` group
//!   resolution);
//! * `em_grouped` — the grouped engine's EM cell. Since the
//!   unification both engines route EM through the *same*
//!   `select_grouped_into` sampler, so this cell measures only the
//!   mirror engine's wrapper overhead vs `em_grouped_exact` — kept as
//!   a noise-floor control and for baseline continuity, not as an
//!   independent pipeline.
//!
//! Schema 4 also records `context_setup` — the per-dataset wall-clock
//! of building the shared `SweepContext` (the sweep's *single* score
//! sort + rank table, amortized across every `(engine, algorithm, c)`
//! cell, where each context formerly paid its own top-`c` pass).
//!
//! Schema 5 adds a `serving` section: one run of the `serve_smoke`
//! multi-tenant workload (`svt_experiments::serving`) driving the
//! sharded `svt-server` session store with concurrent worker threads,
//! recording qps and p50/p99 `submit_batch` latency and asserting that
//! every tenant's budget-receipt chain audits clean. Serving lines
//! carry no `engine` field, so the ratio gate below skips them (like
//! `context_setup`) — they track the serving trajectory without gating
//! on absolute wall-clock.
//!
//! Schema 6 extends the serving line with the durability columns the
//! workload now exercises: `shed` (requests refused by admission
//! control in the deterministic churn phase), `evicted` (sessions
//! reclaimed by the LRU cap), and `recovery_ms` (wall-clock of WAL
//! replay + chain re-verification after the workload's simulated
//! mid-run crash). `shed` and `evicted` are deterministic; `recovery_ms`
//! is wall-clock and, like qps, not gated.
//!
//! Schema 7 adds the post-2017 reference-suite variants as first-class
//! cell groups at both scales: `SVT-RV-1:c^(2/3)` (SVT-Revisited,
//! ⊤-only charging) through `rv_exact_scalar` / `rv_exact_batched` /
//! `rv_grouped_indexed`, and `SVT-Exp-1:c^(2/3)` (one-sided
//! exponential noise) through `exp_exact_scalar` / `exp_exact_batched`
//! / `exp_grouped_indexed`. Each group's scalar path anchors its ratio
//! gate, mirroring the `SVT-S` group.
//!
//! Schema 8 splits `context_setup` into the warm-start columns:
//! `context_setup_cold_ns` (building the shared `SweepContext` from raw
//! scores — the sweep's single sort), `context_setup_warm_ns`
//! (`SweepContext::load_or_build` on the persisted snapshot: digest
//! check + decode + derive, **no sort**), and `score_update_ns` (one
//! incremental `LiveScores` relocation, sustained over a deterministic
//! update storm — the no-re-sort path dataset updates ride). Warm loads
//! are asserted bit-identical to the cold build, and each dataset line
//! prints a `[warm<cold]` marker CI greps for. Context lines still
//! carry no `engine` field, so the ratio gate skips them.
//!
//! Schema 9 adds the kernel-policy dimension. Every batched/grouped
//! cell above is now explicitly pinned to `NoiseKernel::Reference` (the
//! libm path whose noise stream is bit-identical to the scalar
//! references — exactly what those cells have always measured), and
//! each group gains a `*_vectorized` sibling running the same pipeline
//! under `NoiseKernel::Vectorized` (the batched polynomial-`ln` kernel,
//! deterministic but not bit-pinned to libm): `exact_batched_vectorized`
//! / `svt_grouped_indexed_vectorized`, `rv_*` and `exp_*` likewise, and
//! `em_grouped_vectorized`. The SVT-RV batched paths also switch from
//! the interactive per-draw wrapper to the forked-stream
//! `revisited_select_from` driver, which buffers its noise and so
//! actually batches — previously `rv_exact_batched` drew noise one
//! value at a time through the caller's generator and lost to its own
//! scalar reference. Two stdout gates ride along: every AOL-scale cell
//! at or under 100 µs/run prints a `[sub100us] <engine>` marker CI
//! greps for, and each `(dataset, algorithm)` group asserts its batched
//! engine is no slower than its scalar reference.
//!
//! The workload, seeds, and run counts are fixed, so the *work
//! performed* is identical from machine to machine and run to run; only
//! wall-clock varies. Output is machine-readable JSON (ns/run per
//! engine per dataset size) so CI can track the perf trajectory, and
//! `--check BASELINE.json` turns the binary into a regression gate.
//! The gate compares **engine ratios**, not absolute wall-clock: within
//! each `(dataset, algorithm)` cell group the slowest reference engine
//! present (`exact_scalar` for SVT; `em_peel`, else `em_batched`, for
//! EM) is the denominator, so machine speed cancels and only a change
//! in the *relative* cost of a pipeline trips the gate. Any engine
//! whose ratio grows more than [`CHECK_TOLERANCE`] vs the committed
//! baseline fails the run with a per-cell diff.
//!
//! Usage: `bench_smoke [--out PATH] [--runs N] [--seed S]
//! [--check BASELINE] [--context-cache DIR]` (default `--out
//! BENCH_svt.json`, `--runs 40`; without `--context-cache` the persisted
//! contexts live in a per-process temp directory that is removed on
//! exit — point it at a stable directory to measure cross-process warm
//! starts).

use dp_data::{LiveScores, ScoreVector};
use dp_mechanisms::{DpRng, NoiseBuffer, NoiseKernel};
use std::fmt::Write as _;
use std::path::Path;
use std::time::Instant;
use svt_core::allocation::BudgetRatio;
use svt_core::streaming::RunScratch;
use svt_experiments::serving::{serve_smoke, ServeSmokeConfig, ServeSmokeReport};
use svt_experiments::simulate::exact::ExactContext;
use svt_experiments::simulate::grouped::GroupedContext;
use svt_experiments::simulate::{ContextSetup as SetupKind, SweepContext};
use svt_experiments::spec::AlgorithmSpec;

const AOL_SCALE: usize = 2_290_685;
const MID_SCALE: usize = 100_000;
const CUTOFF: usize = 100;
const EPSILON: f64 = 0.1;

/// Relative growth of an engine's ratio (vs its cell group's reference
/// engine) that fails `--check`. Gating on ratios cancels machine speed
/// — a uniformly slower CI runner moves numerator and denominator alike
/// — so the tolerance only has to absorb scheduling jitter, not
/// hardware variance; ±30 % remains generous for that while still
/// catching every real pipeline regression (the wins this file records
/// are ≥ 1.5×).
const CHECK_TOLERANCE: f64 = 0.30;

/// Reference-engine preference per algorithm, most-preferred first: the
/// slowest (scalar/peeling) path present in both runs anchors its
/// `(dataset, algorithm)` group's ratios. `em_peel` is absent at AOL
/// scale, where `em_batched` (the per-item-key path) anchors instead.
fn reference_preference(algorithm: &str) -> &'static [&'static str] {
    if algorithm == "EM" {
        &["em_peel", "em_batched"]
    } else if algorithm.starts_with("SVT-RV") {
        &["rv_exact_scalar"]
    } else if algorithm.starts_with("SVT-Exp") {
        &["exp_exact_scalar"]
    } else {
        &["exact_scalar"]
    }
}

/// Deterministic power-law scores (the same shape `svt-bench` uses),
/// deterministically shuffled: real datasets do not hand out item ids
/// in rank order, and an already-sorted vector would let the cold
/// context build skip most of its sort (pdqsort detects the run),
/// understating exactly the cost the warm-start column exists to
/// measure.
fn powerlaw_scores(n: usize) -> ScoreVector {
    let mut v: Vec<f64> = (1..=n as u64)
        .map(|r| (100_000.0 / (r as f64).powf(0.8)).round())
        .collect();
    // SplitMix64-driven Fisher–Yates, fixed seed: the same permutation
    // on every machine and run.
    let mut x = 0x0dd5_ba11_5eed_f00d_u64;
    for i in (1..n).rev() {
        x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        v.swap(i, (z % (i as u64 + 1)) as usize);
    }
    ScoreVector::new(v).expect("nonempty finite scores")
}

struct CellTiming {
    dataset: String,
    n: usize,
    algorithm: &'static str,
    engine: &'static str,
    runs: usize,
    ns_per_run: u128,
    mean_ser: f64,
}

/// Per-dataset context columns: cold build (the sweep's single score
/// sort + rank table), warm load (persisted snapshot: digest check +
/// decode + derive, no sort), and one sustained incremental score
/// update.
struct ContextSetup {
    dataset: String,
    n: usize,
    cold_ns: u128,
    warm_ns: u128,
    score_update_ns: u128,
}

fn time_runs<F: FnMut(&mut DpRng) -> f64>(seed: u64, runs: usize, mut body: F) -> (u128, f64) {
    // One warm-up run (page in buffers, fault in the dataset).
    let mut warm = DpRng::seed_from_u64(seed ^ 0xdead_beef);
    let _ = body(&mut warm);
    // Timed passes over identical seeded work; keep the fastest. The
    // minimum is far more stable than the mean under scheduler or
    // neighbor noise, which matters once `--check` gates CI on it.
    // Cheap cells (a pass of a few ms) sit entirely inside a single
    // scheduler quantum, so any neighbor activity during the pass
    // inflates it end to end — for those, spend the budget on more
    // passes so at least one lands in a quiet window. Expensive cells
    // keep three passes: their per-pass cost already averages spikes
    // out, and more passes would dominate the bench's wall clock.
    const CHEAP_PASS_NS: u128 = 50_000_000;
    let mut best = u128::MAX;
    let mut mean_ser = 0.0;
    let mut pass = 0;
    let mut passes = 3;
    while pass < passes {
        let mut rng = DpRng::seed_from_u64(seed);
        let mut ser_sum = 0.0;
        let start = Instant::now();
        for _ in 0..runs {
            ser_sum += body(&mut rng);
        }
        let elapsed = start.elapsed().as_nanos();
        if pass == 0 && elapsed < CHEAP_PASS_NS {
            passes = 9;
        }
        best = best.min(elapsed);
        mean_ser = ser_sum / runs as f64;
        pass += 1;
    }
    (best / runs as u128, mean_ser)
}

fn bench_size(
    name: &str,
    n: usize,
    runs: usize,
    seed: u64,
    cache_dir: &Path,
    out: &mut Vec<CellTiming>,
    setups: &mut Vec<ContextSetup>,
) {
    let scores = powerlaw_scores(n);
    let svt = AlgorithmSpec::Standard {
        ratio: BudgetRatio::OneToCTwoThirds,
    };
    let svt_label = "SVT-S-1:c^(2/3)";
    // The sweep's single score sort, shared by every context below —
    // the *cold* column. Timed on the first use of `scores`, before its
    // internal snapshot cache exists.
    let setup_start = Instant::now();
    let sweep = SweepContext::new(&scores);
    let cold_ns = setup_start.elapsed().as_nanos();
    // The *warm* column: load the persisted snapshot back, skipping the
    // sort. Seed the cache untimed, then time `load_or_build` (best of
    // three) and pin bit-identity against the cold build.
    let cache_path = cache_dir.join(format!("{name}.ctxsnap"));
    let (seeded, _) =
        SweepContext::load_or_build(&cache_path, &scores).expect("seed context cache");
    assert_eq!(seeded, sweep, "persisted context must round-trip");
    let mut warm_ns = u128::MAX;
    for _ in 0..3 {
        let warm_start = Instant::now();
        let (warm, setup) =
            SweepContext::load_or_build(&cache_path, &scores).expect("warm context load");
        warm_ns = warm_ns.min(warm_start.elapsed().as_nanos());
        assert_eq!(setup, SetupKind::Warm, "cache seeded above: must load warm");
        assert_eq!(
            warm, sweep,
            "warm load must be bit-identical to the cold build"
        );
    }
    // The *update* column: sustained incremental relocations through
    // `LiveScores` — the no-re-sort path `update_scores` batches ride.
    let mut live = LiveScores::from_scores(scores.as_slice()).expect("finite scores");
    let update_rounds = 256u64;
    let mut x = seed | 1;
    let update_start = Instant::now();
    for round in 0..update_rounds {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let item = (x >> 33) as usize % n;
        let delta = if round % 2 == 0 { 1.0 } else { -1.0 } * ((round % 7) as f64 + 0.5);
        live.increment(item, delta).expect("in-range finite update");
    }
    let score_update_ns = update_start.elapsed().as_nanos() / u128::from(update_rounds);
    setups.push(ContextSetup {
        dataset: name.to_owned(),
        n,
        cold_ns,
        warm_ns,
        score_update_ns,
    });
    let exact = ExactContext::new(&scores, &sweep, CUTOFF);
    let cell = |algorithm: &'static str,
                engine: &'static str,
                runs: usize,
                (ns_per_run, mean_ser): (u128, f64)| CellTiming {
        dataset: name.to_owned(),
        n,
        algorithm,
        engine,
        runs,
        ns_per_run,
        mean_ser,
    };
    // The scalar references pay O(n) (or O(c·n) for EM peeling) per
    // run; keep their run counts small so the smoke stays short.
    let scalar_runs = if n >= AOL_SCALE {
        runs.div_ceil(8)
    } else {
        runs
    };
    let timing = time_runs(seed, scalar_runs, |rng| {
        exact.run_once(&svt, EPSILON, rng).expect("scalar run").ser
    });
    out.push(cell(svt_label, "exact_scalar", scalar_runs, timing));

    // Two scratches per engine, one per noise kernel: the Reference
    // scratch keeps the historical cells on the libm path they have
    // always measured (bit-identical to the scalar references), the
    // Vectorized scratch runs the identical pipeline on the batched
    // polynomial-ln kernel.
    let mut scratch = RunScratch::with_kernel(NoiseBuffer::DEFAULT_BATCH, NoiseKernel::Reference);
    let mut scratch_vec = RunScratch::new();
    debug_assert_eq!(scratch_vec.kernel(), NoiseKernel::Vectorized);
    let timing = time_runs(seed, runs, |rng| {
        exact
            .run_once_into(&svt, EPSILON, rng, &mut scratch)
            .expect("batched run")
            .ser
    });
    out.push(cell(svt_label, "exact_batched", runs, timing));

    let timing = time_runs(seed, runs, |rng| {
        exact
            .run_once_into(&svt, EPSILON, rng, &mut scratch_vec)
            .expect("vectorized batched run")
            .ser
    });
    out.push(cell(svt_label, "exact_batched_vectorized", runs, timing));

    let grouped = GroupedContext::new(&sweep, CUTOFF);
    let mut grouped_scratch =
        RunScratch::with_kernel(NoiseBuffer::DEFAULT_BATCH, NoiseKernel::Reference);
    let mut grouped_scratch_vec = RunScratch::new();
    let timing = time_runs(seed, runs, |rng| {
        grouped
            .run_once_into(&svt, EPSILON, rng, &mut grouped_scratch)
            .expect("grouped run")
            .ser
    });
    out.push(cell(svt_label, "svt_grouped_indexed", runs, timing));

    let timing = time_runs(seed, runs, |rng| {
        grouped
            .run_once_into(&svt, EPSILON, rng, &mut grouped_scratch_vec)
            .expect("vectorized grouped run")
            .ser
    });
    out.push(cell(
        svt_label,
        "svt_grouped_indexed_vectorized",
        runs,
        timing,
    ));

    // The post-2017 reference-suite groups: SVT-Revisited and the
    // exponential-noise SVT, each through the scalar reference, the
    // streaming exact path, and the grouped index-level mirror — the
    // same three-way split as the SVT-S group above.
    let post2017 = [
        (
            AlgorithmSpec::Revisited {
                ratio: BudgetRatio::OneToCTwoThirds,
            },
            "SVT-RV-1:c^(2/3)",
            [
                "rv_exact_scalar",
                "rv_exact_batched",
                "rv_grouped_indexed",
                "rv_exact_batched_vectorized",
                "rv_grouped_indexed_vectorized",
            ],
        ),
        (
            AlgorithmSpec::ExpNoise {
                ratio: BudgetRatio::OneToCTwoThirds,
            },
            "SVT-Exp-1:c^(2/3)",
            [
                "exp_exact_scalar",
                "exp_exact_batched",
                "exp_grouped_indexed",
                "exp_exact_batched_vectorized",
                "exp_grouped_indexed_vectorized",
            ],
        ),
    ];
    for (spec, label, [scalar_engine, batched_engine, grouped_engine, batched_vec, grouped_vec]) in
        post2017
    {
        let timing = time_runs(seed, scalar_runs, |rng| {
            exact.run_once(&spec, EPSILON, rng).expect("scalar run").ser
        });
        out.push(cell(label, scalar_engine, scalar_runs, timing));

        let timing = time_runs(seed, runs, |rng| {
            exact
                .run_once_into(&spec, EPSILON, rng, &mut scratch)
                .expect("batched run")
                .ser
        });
        out.push(cell(label, batched_engine, runs, timing));

        let timing = time_runs(seed, runs, |rng| {
            grouped
                .run_once_into(&spec, EPSILON, rng, &mut grouped_scratch)
                .expect("grouped run")
                .ser
        });
        out.push(cell(label, grouped_engine, runs, timing));

        let timing = time_runs(seed, runs, |rng| {
            exact
                .run_once_into(&spec, EPSILON, rng, &mut scratch_vec)
                .expect("vectorized batched run")
                .ser
        });
        out.push(cell(label, batched_vec, runs, timing));

        let timing = time_runs(seed, runs, |rng| {
            grouped
                .run_once_into(&spec, EPSILON, rng, &mut grouped_scratch_vec)
                .expect("vectorized grouped run")
                .ser
        });
        out.push(cell(label, grouped_vec, runs, timing));
    }

    // The EM cell. Literal peeling is O(c·n) per run — at AOL scale
    // that is ~10 s of ln() calls per run, so the scalar reference is
    // timed at the mid scale only (the batched and grouped engines
    // cover both scales).
    if n < AOL_SCALE {
        let em_runs = runs.div_ceil(8);
        let timing = time_runs(seed, em_runs, |rng| {
            exact
                .run_once(&AlgorithmSpec::Em, EPSILON, rng)
                .expect("em peel run")
                .ser
        });
        out.push(cell("EM", "em_peel", em_runs, timing));
    }

    // The per-item-key one-shot (one Gumbel key per item, O(n log c)):
    // the reference the grouped-exact route is gated against.
    let em_runs = if n >= AOL_SCALE {
        runs.div_ceil(2)
    } else {
        runs
    };
    let timing = time_runs(seed, em_runs, |rng| {
        exact
            .run_once_em_ungrouped(EPSILON, rng, &mut scratch)
            .expect("em batched run")
            .ser
    });
    out.push(cell("EM", "em_batched", em_runs, timing));

    // The exact engine's default EM route (what `SimulationMode::Auto`
    // runs): lazy per-group order statistics, O(G + c) draws per run.
    let timing = time_runs(seed, runs, |rng| {
        exact
            .run_once_into(&AlgorithmSpec::Em, EPSILON, rng, &mut scratch)
            .expect("em grouped-exact run")
            .ser
    });
    out.push(cell("EM", "em_grouped_exact", runs, timing));

    // Noise-floor control: identical sampler to `em_grouped_exact`,
    // reached through the mirror engine's wrapper (see module docs).
    let timing = time_runs(seed, runs, |rng| {
        grouped
            .run_once_into(&AlgorithmSpec::Em, EPSILON, rng, &mut grouped_scratch)
            .expect("em grouped run")
            .ser
    });
    out.push(cell("EM", "em_grouped", runs, timing));

    // The grouped EM sampler under the vectorized Gumbel kernel (the
    // per-key double-log path through the polynomial ln).
    let timing = time_runs(seed, runs, |rng| {
        grouped
            .run_once_into(&AlgorithmSpec::Em, EPSILON, rng, &mut grouped_scratch_vec)
            .expect("vectorized em grouped run")
            .ser
    });
    out.push(cell("EM", "em_grouped_vectorized", runs, timing));
}

/// The satellite gate: within each `(dataset, algorithm)` group the
/// batched pipeline must not lose to its own scalar reference — the
/// exact regression `rv_exact_batched` shipped with before the
/// forked-stream driver landed.
///
/// Two tiers, because the two batched siblings make different claims:
///
/// * the **vectorized** cell is the production default (both mirror
///   engines run [`NoiseKernel::Vectorized`]) and must be strictly
///   `≤` scalar;
/// * the **reference** cell exists to keep the libm bit-compat path
///   honest, and for whole-list algorithms (SVT-RV examines everything)
///   it does the same libm `ln` per draw as the scalar loop — the
///   honest margin is only the avoided per-run allocation, well inside
///   single-core scheduler noise. It gets a 15% allowance so a
///   same-speed tie can't flip the gate on a noisy box while a real
///   regression (the old interactive wrapper was 1.8–1.9× scalar)
///   still trips it.
fn assert_batched_beats_scalar(cells: &[CellTiming]) {
    // (strict vectorized cell, reference-kernel cell, scalar reference)
    let pairs = [
        ("exact_batched_vectorized", "exact_batched", "exact_scalar"),
        (
            "rv_exact_batched_vectorized",
            "rv_exact_batched",
            "rv_exact_scalar",
        ),
        (
            "exp_exact_batched_vectorized",
            "exp_exact_batched",
            "exp_exact_scalar",
        ),
        ("em_batched", "em_batched", "em_peel"),
    ];
    const REFERENCE_ALLOWANCE: f64 = 1.15;
    for (vectorized, reference, scalar) in pairs {
        for s in cells.iter().filter(|c| c.engine == scalar) {
            let in_cell = |engine: &str| {
                cells
                    .iter()
                    .find(|c| c.dataset == s.dataset && c.engine == engine)
            };
            if let Some(v) = in_cell(vectorized) {
                assert!(
                    v.ns_per_run <= s.ns_per_run,
                    "{}/{vectorized}: {} ns/run is slower than {scalar}'s {} ns/run",
                    s.dataset,
                    v.ns_per_run,
                    s.ns_per_run
                );
            }
            if let Some(r) = in_cell(reference) {
                let cap = (s.ns_per_run as f64 * REFERENCE_ALLOWANCE) as u128;
                assert!(
                    r.ns_per_run <= cap,
                    "{}/{reference}: {} ns/run exceeds {scalar}'s {} ns/run by more than {:.0}%",
                    s.dataset,
                    r.ns_per_run,
                    s.ns_per_run,
                    (REFERENCE_ALLOWANCE - 1.0) * 100.0
                );
            }
        }
    }
}

fn render_json(
    cells: &[CellTiming],
    setups: &[ContextSetup],
    serving: &ServeSmokeReport,
    seed: u64,
    speedup: f64,
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema\": 9,");
    let _ = writeln!(s, "  \"bench\": \"svt_cell\",");
    let _ = writeln!(
        s,
        "  \"cell\": {{\"c\": {CUTOFF}, \"epsilon\": {EPSILON}}},"
    );
    let _ = writeln!(s, "  \"seed\": {seed},");
    let _ = writeln!(s, "  \"aol_scale_exact_speedup\": {speedup:.2},");
    s.push_str("  \"context_setup\": [\n");
    for (i, setup) in setups.iter().enumerate() {
        let comma = if i + 1 == setups.len() { "" } else { "," };
        let _ = writeln!(
            s,
            "    {{\"dataset\": \"{}\", \"n\": {}, \"context_setup_cold_ns\": {}, \"context_setup_warm_ns\": {}, \"score_update_ns\": {}}}{}",
            setup.dataset, setup.n, setup.cold_ns, setup.warm_ns, setup.score_update_ns, comma
        );
    }
    s.push_str("  ],\n");
    // Serving lines intentionally omit the `engine` field so
    // `parse_baseline` (and therefore the ratio gate) skips them.
    s.push_str("  \"serving\": [\n");
    let _ = writeln!(
        s,
        "    {{\"workload\": \"serve_smoke\", \"tenants\": {}, \"threads\": {}, \"sessions\": {}, \"queries\": {}, \"batches\": {}, \"qps\": {:.0}, \"p50_batch_ns\": {}, \"p99_batch_ns\": {}, \"positives\": {}, \"shed\": {}, \"evicted\": {}, \"recovery_ms\": {:.3}, \"ledgers_verified\": {}}}",
        serving.tenants,
        serving.threads,
        serving.sessions,
        serving.queries,
        serving.batches,
        serving.qps,
        serving.p50_batch_ns,
        serving.p99_batch_ns,
        serving.positives,
        serving.shed,
        serving.evicted,
        serving.recovery_ms,
        serving.ledgers_verified
    );
    s.push_str("  ],\n");
    s.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let comma = if i + 1 == cells.len() { "" } else { "," };
        let _ = writeln!(
            s,
            "    {{\"dataset\": \"{}\", \"n\": {}, \"algorithm\": \"{}\", \"engine\": \"{}\", \"runs\": {}, \"ns_per_run\": {}, \"mean_ser\": {:.4}}}{}",
            c.dataset, c.n, c.algorithm, c.engine, c.runs, c.ns_per_run, c.mean_ser, comma
        );
    }
    s.push_str("  ]\n}\n");
    s
}

/// Extracts `"key": "value"` from one JSON line.
fn json_str_field(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": \"");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    Some(rest[..rest.find('"')?].to_owned())
}

/// Extracts `"key": <integer>` from one JSON line.
fn json_int_field(line: &str, key: &str) -> Option<u128> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let digits: String = line[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// One parsed baseline cell: `(dataset, algorithm, engine, ns_per_run)`.
type BaselineCell = (String, String, &'static str, u128);

/// Parses the per-cell lines of a committed `BENCH_svt.json` (schema 2
/// through 9 — the per-cell `algorithm` field is required for ratio
/// grouping; cells are keyed by `(dataset, engine)`; schema 4's
/// `context_setup` and schema 5/6's `serving` lines carry no engine and
/// are skipped).
fn parse_baseline(text: &str) -> Vec<BaselineCell> {
    let mut cells = Vec::new();
    for line in text.lines() {
        let (Some(dataset), Some(algorithm), Some(engine), Some(ns)) = (
            json_str_field(line, "dataset"),
            json_str_field(line, "algorithm"),
            json_str_field(line, "engine"),
            json_int_field(line, "ns_per_run"),
        ) else {
            continue;
        };
        // Intern the engine name against the known set so comparisons
        // are typo-proof.
        let known = [
            "exact_scalar",
            "exact_batched",
            "exact_batched_vectorized",
            "svt_grouped_indexed",
            "svt_grouped_indexed_vectorized",
            "rv_exact_scalar",
            "rv_exact_batched",
            "rv_exact_batched_vectorized",
            "rv_grouped_indexed",
            "rv_grouped_indexed_vectorized",
            "exp_exact_scalar",
            "exp_exact_batched",
            "exp_exact_batched_vectorized",
            "exp_grouped_indexed",
            "exp_grouped_indexed_vectorized",
            "em_peel",
            "em_batched",
            "em_grouped_exact",
            "em_grouped",
            "em_grouped_vectorized",
        ];
        if let Some(&engine) = known.iter().find(|&&e| e == engine) {
            cells.push((dataset, algorithm, engine, ns));
        }
    }
    cells
}

/// Finds the `(dataset, algorithm)` group's reference timing in a cell
/// list: the most-preferred reference engine present.
fn reference_ns<'c>(
    cells: impl Iterator<Item = (&'c str, u128)> + Clone,
    algorithm: &str,
) -> Option<(&'static str, u128)> {
    for &preferred in reference_preference(algorithm) {
        if let Some((_, ns)) = cells.clone().find(|&(engine, _)| engine == preferred) {
            return Some((preferred, ns));
        }
    }
    None
}

/// Compares fresh timings against the committed baseline on **engine
/// ratios**: within each `(dataset, algorithm)` group every engine's
/// `ns_per_run` is divided by the group's reference engine's, in the
/// fresh run and in the baseline separately, and the two ratios are
/// compared. Machine speed multiplies numerator and denominator alike,
/// so it cancels; what's gated is the relative cost of each pipeline.
/// Returns an error message listing every engine whose ratio grew more
/// than `CHECK_TOLERANCE`; prints (but tolerates) ratios that *shrank*
/// by more, since that means the committed baseline is stale and should
/// be regenerated. Reference engines themselves are only checked for
/// presence (their ratio is 1 by construction).
fn check_against_baseline(cells: &[CellTiming], baseline_path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read baseline {baseline_path}: {e}"))?;
    let baseline = parse_baseline(&text);
    if baseline.is_empty() {
        return Err(format!("baseline {baseline_path} contains no cells"));
    }
    let mut regressions = Vec::new();
    let mut improvements = Vec::new();
    // A reference engine missing from the fresh run breaks its whole
    // group; report that once, not once per dependent engine.
    let mut missing_references = std::collections::BTreeSet::new();
    for (dataset, algorithm, engine, base_ns) in &baseline {
        let Some(fresh) = cells
            .iter()
            .find(|c| &c.dataset == dataset && c.engine == *engine)
        else {
            regressions.push(format!(
                "  {dataset}/{engine}: present in baseline but missing from this run"
            ));
            continue;
        };
        let base_group = baseline
            .iter()
            .filter(|(d, a, _, _)| d == dataset && a == algorithm)
            .map(|(_, _, e, ns)| (*e, *ns));
        let Some((reference, base_ref_ns)) = reference_ns(base_group, algorithm) else {
            continue; // group has no reference engine: nothing to gate on
        };
        if *engine == reference {
            continue;
        }
        let fresh_ref_ns = cells
            .iter()
            .find(|c| &c.dataset == dataset && c.engine == reference)
            .map(|c| c.ns_per_run)
            .unwrap_or(0);
        if fresh_ref_ns == 0 {
            if missing_references.insert((dataset.clone(), reference)) {
                regressions.push(format!(
                    "  {dataset}/{reference}: reference engine missing from this run"
                ));
            }
            continue;
        }
        let base_ratio = *base_ns as f64 / base_ref_ns.max(1) as f64;
        let fresh_ratio = fresh.ns_per_run as f64 / fresh_ref_ns as f64;
        let rel = fresh_ratio / base_ratio;
        let line = format!(
            "  {dataset}/{engine}: vs {reference} was {base_ratio:.3e}, now {fresh_ratio:.3e} ({:+.1}%)",
            (rel - 1.0) * 100.0
        );
        if rel > 1.0 + CHECK_TOLERANCE {
            regressions.push(line);
        } else if rel < 1.0 - CHECK_TOLERANCE {
            improvements.push(line);
        }
    }
    if !improvements.is_empty() {
        println!(
            "note: {} engine ratio(s) are >{:.0}% better than the committed baseline; \
             consider regenerating {baseline_path}:",
            improvements.len(),
            CHECK_TOLERANCE * 100.0
        );
        for line in &improvements {
            println!("{line}");
        }
    }
    if regressions.is_empty() {
        println!(
            "perf check passed: every engine ratio within +{:.0}% of {baseline_path}",
            CHECK_TOLERANCE * 100.0
        );
        Ok(())
    } else {
        Err(format!(
            "perf regression: {} engine ratio(s) exceed the +{:.0}% tolerance vs {baseline_path}:\n{}",
            regressions.len(),
            CHECK_TOLERANCE * 100.0,
            regressions.join("\n")
        ))
    }
}

fn main() {
    let mut out_path = String::from("BENCH_svt.json");
    let mut check_path: Option<String> = None;
    let mut context_cache: Option<String> = None;
    let mut runs = 40usize;
    let mut seed = 0x5f37_59df_u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {flag}");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--out" => out_path = value("--out"),
            "--check" => check_path = Some(value("--check")),
            "--context-cache" => context_cache = Some(value("--context-cache")),
            "--runs" => {
                runs = value("--runs").parse().unwrap_or(0);
                if runs == 0 {
                    eprintln!("invalid value for --runs (want a positive integer)");
                    std::process::exit(2);
                }
            }
            "--seed" => {
                seed = value("--seed").parse().unwrap_or_else(|_| {
                    eprintln!("invalid value for --seed");
                    std::process::exit(2);
                })
            }
            other => {
                eprintln!(
                    "unknown flag {other}\nusage: bench_smoke [--out PATH] [--runs N] [--seed S] [--check BASELINE] [--context-cache DIR]"
                );
                std::process::exit(2);
            }
        }
    }

    // Persisted contexts go to the named directory (stable across
    // invocations: warm starts survive the process) or to a per-process
    // temp directory cleaned up on exit.
    let (cache_dir, ephemeral_cache) = match &context_cache {
        Some(dir) => (std::path::PathBuf::from(dir), false),
        None => (
            std::env::temp_dir().join(format!("svt-bench-ctx-{}", std::process::id())),
            true,
        ),
    };

    let mut cells = Vec::new();
    let mut setups = Vec::new();
    bench_size(
        "powerlaw",
        MID_SCALE,
        runs,
        seed,
        &cache_dir,
        &mut cells,
        &mut setups,
    );
    bench_size(
        "powerlaw-aol-scale",
        AOL_SCALE,
        runs,
        seed,
        &cache_dir,
        &mut cells,
        &mut setups,
    );
    if ephemeral_cache {
        let _ = std::fs::remove_dir_all(&cache_dir);
    }

    let scalar = cells
        .iter()
        .find(|c| c.n == AOL_SCALE && c.engine == "exact_scalar")
        .expect("scalar cell present");
    let batched = cells
        .iter()
        .find(|c| c.n == AOL_SCALE && c.engine == "exact_batched")
        .expect("batched cell present");
    let speedup = scalar.ns_per_run as f64 / batched.ns_per_run.max(1) as f64;

    // The serving smoke: a short multi-tenant run over the sharded
    // session store, audited end to end. Seeded off the benchmark seed
    // so the workload (though not the wall-clock) is reproducible.
    let serving = serve_smoke(&ServeSmokeConfig {
        queries_per_session: 250,
        seed: seed ^ 0x5e1f_5e18,
        ..ServeSmokeConfig::default()
    });
    assert_eq!(
        serving.ledgers_verified, serving.tenants,
        "every tenant ledger must audit clean"
    );

    assert_batched_beats_scalar(&cells);

    println!("engine timings (c = {CUTOFF}, eps = {EPSILON}):");
    for c in &cells {
        println!(
            "  {:>20} n={:>9} {:>16} {:>13} {:>12} ns/run  ({} runs, mean SER {:.3})",
            c.dataset, c.n, c.algorithm, c.engine, c.ns_per_run, c.runs, c.mean_ser
        );
    }
    // AOL-scale cells at or under 100 µs/run, one greppable marker each.
    for c in &cells {
        if c.n >= AOL_SCALE && c.ns_per_run <= 100_000 {
            println!("[sub100us] {}", c.engine);
        }
    }
    println!("AOL-scale exact engine speedup (scalar / batched): {speedup:.1}x");
    for s in &setups {
        let marker = if s.warm_ns < s.cold_ns {
            " [warm<cold]"
        } else {
            ""
        };
        println!(
            "  shared SweepContext setup: {:>20} n={:>9} cold {:>12} ns, warm {:>12} ns, \
             score update {:>8} ns{}",
            s.dataset, s.n, s.cold_ns, s.warm_ns, s.score_update_ns, marker
        );
    }
    println!(
        "serving smoke: {} tenants x {} threads, {} queries in {} batches, \
         {:.0} qps, p50 {} ns, p99 {} ns per batch, crash recovery {:.1} ms, \
         {} shed / {} evicted in churn, {}/{} ledgers audited clean",
        serving.tenants,
        serving.threads,
        serving.queries,
        serving.batches,
        serving.qps,
        serving.p50_batch_ns,
        serving.p99_batch_ns,
        serving.recovery_ms,
        serving.shed,
        serving.evicted,
        serving.ledgers_verified,
        serving.tenants
    );

    let json = render_json(&cells, &setups, &serving, seed, speedup);
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("failed to write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path}");

    if let Some(baseline) = check_path {
        if let Err(message) = check_against_baseline(&cells, &baseline) {
            eprintln!("{message}");
            std::process::exit(1);
        }
    }
}
