//! `bench_smoke` — short deterministic benchmark emitting `BENCH_svt.json`.
//!
//! Times one paper-style cell (`SVT-S-1:c^(2/3)`, `c = 100`, `ε = 0.1`)
//! on synthetic power-law workloads at two sizes — a mid-sized one and
//! the AOL scale (2,290,685 items) — through three engines:
//!
//! * `exact_scalar` — the reference per-query path (fresh allocations,
//!   eager full shuffle, per-draw noise);
//! * `exact_batched` — the zero-copy streaming path (reusable
//!   [`RunScratch`], lazy Fisher–Yates, block-batched noise);
//! * `grouped` — the tied-score sampling engine.
//!
//! The workload, seeds, and run counts are fixed, so the *work
//! performed* is identical from machine to machine and run to run; only
//! wall-clock varies. Output is machine-readable JSON (ns/run per
//! engine per dataset size) so CI can track the perf trajectory.
//!
//! Usage: `bench_smoke [--out PATH] [--runs N] [--seed S]`
//! (default `--out BENCH_svt.json`, `--runs 40`).

use dp_data::ScoreVector;
use dp_mechanisms::DpRng;
use std::fmt::Write as _;
use std::time::Instant;
use svt_core::allocation::BudgetRatio;
use svt_core::streaming::RunScratch;
use svt_experiments::simulate::exact::ExactContext;
use svt_experiments::simulate::grouped::GroupedContext;
use svt_experiments::spec::AlgorithmSpec;

const AOL_SCALE: usize = 2_290_685;
const MID_SCALE: usize = 100_000;
const CUTOFF: usize = 100;
const EPSILON: f64 = 0.1;

/// Deterministic power-law scores (the same shape `svt-bench` uses).
fn powerlaw_scores(n: usize) -> ScoreVector {
    let v: Vec<f64> = (1..=n as u64)
        .map(|r| (100_000.0 / (r as f64).powf(0.8)).round())
        .collect();
    ScoreVector::new(v).expect("nonempty finite scores")
}

struct CellTiming {
    dataset: String,
    n: usize,
    engine: &'static str,
    runs: usize,
    ns_per_run: u128,
    mean_ser: f64,
}

fn time_runs<F: FnMut(&mut DpRng) -> f64>(seed: u64, runs: usize, mut body: F) -> (u128, f64) {
    // One warm-up run (page in buffers, fault in the dataset).
    let mut warm = DpRng::seed_from_u64(seed ^ 0xdead_beef);
    let _ = body(&mut warm);
    let mut rng = DpRng::seed_from_u64(seed);
    let mut ser_sum = 0.0;
    let start = Instant::now();
    for _ in 0..runs {
        ser_sum += body(&mut rng);
    }
    let elapsed = start.elapsed().as_nanos();
    (elapsed / runs as u128, ser_sum / runs as f64)
}

fn bench_size(name: &str, n: usize, runs: usize, seed: u64, out: &mut Vec<CellTiming>) {
    let scores = powerlaw_scores(n);
    let alg = AlgorithmSpec::Standard {
        ratio: BudgetRatio::OneToCTwoThirds,
    };
    let exact = ExactContext::new(&scores, CUTOFF);
    // The scalar reference pays O(n) per run; keep its run count small
    // at AOL scale so the smoke stays short.
    let scalar_runs = if n >= AOL_SCALE {
        runs.div_ceil(8)
    } else {
        runs
    };
    let (ns, ser) = time_runs(seed, scalar_runs, |rng| {
        exact.run_once(&alg, EPSILON, rng).expect("scalar run").ser
    });
    out.push(CellTiming {
        dataset: name.to_owned(),
        n,
        engine: "exact_scalar",
        runs: scalar_runs,
        ns_per_run: ns,
        mean_ser: ser,
    });

    let mut scratch = RunScratch::new();
    let (ns, ser) = time_runs(seed, runs, |rng| {
        exact
            .run_once_into(&alg, EPSILON, rng, &mut scratch)
            .expect("batched run")
            .ser
    });
    out.push(CellTiming {
        dataset: name.to_owned(),
        n,
        engine: "exact_batched",
        runs,
        ns_per_run: ns,
        mean_ser: ser,
    });

    let grouped = GroupedContext::new(&scores, CUTOFF);
    let (ns, ser) = time_runs(seed, runs, |rng| {
        grouped
            .run_once(&alg, EPSILON, rng)
            .expect("grouped run")
            .ser
    });
    out.push(CellTiming {
        dataset: name.to_owned(),
        n,
        engine: "grouped",
        runs,
        ns_per_run: ns,
        mean_ser: ser,
    });
}

fn render_json(cells: &[CellTiming], seed: u64, speedup: f64) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema\": 1,");
    let _ = writeln!(s, "  \"bench\": \"svt_cell\",");
    let _ = writeln!(
        s,
        "  \"cell\": {{\"algorithm\": \"SVT-S-1:c^(2/3)\", \"c\": {CUTOFF}, \"epsilon\": {EPSILON}}},"
    );
    let _ = writeln!(s, "  \"seed\": {seed},");
    let _ = writeln!(s, "  \"aol_scale_exact_speedup\": {speedup:.2},");
    s.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let comma = if i + 1 == cells.len() { "" } else { "," };
        let _ = writeln!(
            s,
            "    {{\"dataset\": \"{}\", \"n\": {}, \"engine\": \"{}\", \"runs\": {}, \"ns_per_run\": {}, \"mean_ser\": {:.4}}}{}",
            c.dataset, c.n, c.engine, c.runs, c.ns_per_run, c.mean_ser, comma
        );
    }
    s.push_str("  ]\n}\n");
    s
}

fn main() {
    let mut out_path = String::from("BENCH_svt.json");
    let mut runs = 40usize;
    let mut seed = 0x5f37_59df_u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {flag}");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--out" => out_path = value("--out"),
            "--runs" => {
                runs = value("--runs").parse().unwrap_or(0);
                if runs == 0 {
                    eprintln!("invalid value for --runs (want a positive integer)");
                    std::process::exit(2);
                }
            }
            "--seed" => {
                seed = value("--seed").parse().unwrap_or_else(|_| {
                    eprintln!("invalid value for --seed");
                    std::process::exit(2);
                })
            }
            other => {
                eprintln!(
                    "unknown flag {other}\nusage: bench_smoke [--out PATH] [--runs N] [--seed S]"
                );
                std::process::exit(2);
            }
        }
    }

    let mut cells = Vec::new();
    bench_size("powerlaw", MID_SCALE, runs, seed, &mut cells);
    bench_size("powerlaw-aol-scale", AOL_SCALE, runs, seed, &mut cells);

    let scalar = cells
        .iter()
        .find(|c| c.n == AOL_SCALE && c.engine == "exact_scalar")
        .expect("scalar cell present");
    let batched = cells
        .iter()
        .find(|c| c.n == AOL_SCALE && c.engine == "exact_batched")
        .expect("batched cell present");
    let speedup = scalar.ns_per_run as f64 / batched.ns_per_run.max(1) as f64;

    println!("engine timings (SVT-S-1:c^(2/3), c = {CUTOFF}, eps = {EPSILON}):");
    for c in &cells {
        println!(
            "  {:>20} n={:>9} {:>13} {:>12} ns/run  ({} runs, mean SER {:.3})",
            c.dataset, c.n, c.engine, c.ns_per_run, c.runs, c.mean_ser
        );
    }
    println!("AOL-scale exact engine speedup (scalar / batched): {speedup:.1}x");

    let json = render_json(&cells, seed, speedup);
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("failed to write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path}");
}
