//! Regenerates Figure 2 (variant differences and privacy properties).

fn main() {
    let args = svt_experiments::cli::parse_args();
    let table = svt_experiments::figures::figure2_table(0.1, 50);
    svt_experiments::cli::emit(&table, &args, "figure2");
}
