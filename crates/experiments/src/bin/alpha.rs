//! Regenerates the Section 5 analytical comparison of α_SVT vs α_EM.

fn main() {
    let args = svt_experiments::cli::parse_args();
    let ks = [10usize, 100, 1_000, 10_000, 100_000, 1_000_000];
    match svt_experiments::figures::alpha_table(0.1, 0.05, &ks) {
        Ok(table) => svt_experiments::cli::emit(&table, &args, "alpha"),
        Err(e) => {
            eprintln!("alpha failed: {e}");
            std::process::exit(1);
        }
    }
}
