//! Regenerates the non-privacy audit table: empirical privacy-loss
//! measurements for the paper's counterexamples (Theorems 3, 6, 7) and
//! the Lemma 1 / Section 3.3 boundedness check on Algorithm 1.
//!
//! Default is 200k trials per side; use `--trials` to trade time for
//! tighter intervals and `--quick` for a fast smoke run.

fn main() {
    let args = svt_experiments::cli::parse_args();
    let trials = args
        .trials
        .unwrap_or(if args.quick { 20_000 } else { 200_000 });
    let seed = args.seed.unwrap_or(0x5f375a86);
    let started = std::time::Instant::now();
    let table = svt_experiments::figures::nonprivacy_table(trials, seed);
    svt_experiments::cli::emit(&table, &args, "nonprivacy");
    eprintln!("nonprivacy completed in {:.1?}", started.elapsed());
}
