//! Regenerates Table 2 (algorithm summary).

fn main() {
    let args = svt_experiments::cli::parse_args();
    svt_experiments::cli::emit(&svt_experiments::figures::table2(), &args, "table2");
}
