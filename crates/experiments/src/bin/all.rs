//! Runs every experiment in sequence — the full reproduction driver
//! behind `EXPERIMENTS.md`. Budget-friendly defaults: pass `--quick`
//! for a fast pass, nothing for the paper-scale grid.

fn main() {
    let args = svt_experiments::cli::parse_args();
    let config = svt_experiments::cli::resolve_config(&args);
    let started = std::time::Instant::now();

    svt_experiments::cli::emit(&svt_experiments::figures::table1(), &args, "table1");
    svt_experiments::cli::emit(&svt_experiments::figures::table2(), &args, "table2");
    svt_experiments::cli::emit(
        &svt_experiments::figures::figure2_table(0.1, 50),
        &args,
        "figure2",
    );
    svt_experiments::cli::emit(&svt_experiments::figures::figure3(300), &args, "figure3");

    let datasets = svt_experiments::cli::resolve_datasets(&args);
    eprintln!("datasets prepared in {:.1?}", started.elapsed());

    match svt_experiments::figures::figure4(&datasets, &config) {
        Ok(panels) => {
            for panel in &panels {
                let stem = format!(
                    "figure4_{}_{}",
                    panel.dataset.to_lowercase().replace('-', "_"),
                    panel.metric.to_lowercase()
                );
                svt_experiments::cli::emit(&panel.table, &args, &stem);
            }
        }
        Err(e) => eprintln!("figure4 failed: {e}"),
    }
    eprintln!("figure 4 done at {:.1?}", started.elapsed());

    match svt_experiments::figures::figure5(&datasets, &config) {
        Ok(panels) => {
            for panel in &panels {
                let stem = format!(
                    "figure5_{}_{}",
                    panel.dataset.to_lowercase().replace('-', "_"),
                    panel.metric.to_lowercase()
                );
                svt_experiments::cli::emit(&panel.table, &args, &stem);
            }
        }
        Err(e) => eprintln!("figure5 failed: {e}"),
    }
    eprintln!("figure 5 done at {:.1?}", started.elapsed());

    let ks = [10usize, 100, 1_000, 10_000, 100_000, 1_000_000];
    match svt_experiments::figures::alpha_table(0.1, 0.05, &ks) {
        Ok(table) => svt_experiments::cli::emit(&table, &args, "alpha"),
        Err(e) => eprintln!("alpha failed: {e}"),
    }

    let trials = args
        .trials
        .unwrap_or(if args.quick { 20_000 } else { 200_000 });
    let table = svt_experiments::figures::nonprivacy_table(trials, config.seed);
    svt_experiments::cli::emit(&table, &args, "nonprivacy");
    eprintln!("nonprivacy done at {:.1?}", started.elapsed());

    // Extensions: §4.2 allocation ablation and the ε sweep, on the
    // Zipf workload (representative and cheap; the dedicated binaries
    // cover all datasets).
    let mut ext_config = config.clone();
    ext_config.c_values = vec![];
    if let Some(zipf) = datasets.iter().find(|d| d.name == "Zipf") {
        match svt_experiments::figures::allocation_ablation(zipf, &ext_config, 100, 7) {
            Ok(table) => svt_experiments::cli::emit(&table, &args, "ablation_zipf_c100"),
            Err(e) => eprintln!("ablation failed: {e}"),
        }
        match svt_experiments::figures::epsilon_sweep(
            zipf,
            &ext_config,
            100,
            &[0.025, 0.05, 0.1, 0.2, 0.4],
        ) {
            Ok(table) => svt_experiments::cli::emit(&table, &args, "epsilon_sweep_zipf"),
            Err(e) => eprintln!("epsilon_sweep failed: {e}"),
        }
    }

    eprintln!("all experiments completed in {:.1?}", started.elapsed());
}
