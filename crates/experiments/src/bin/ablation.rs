//! Regenerates the §4.2 budget-allocation ablation (extension,
//! `DESIGN.md` §6): SER/FNR across a log grid of `ε₁:ε₂` ratios at a
//! fixed cutoff, with the Eq. 12 optimum marked. Demonstrates that the
//! measured selection error tracks the analytic comparison-variance
//! objective and bottoms out at (or near) `1:c^{2/3}`.

fn main() {
    let args = svt_experiments::cli::parse_args();
    let mut config = svt_experiments::cli::resolve_config(&args);
    config.c_values = vec![]; // the ablation fixes c per table instead
    let datasets = svt_experiments::cli::resolve_datasets(&args);
    let grid_points = if args.quick { 5 } else { 9 };
    let c_values: &[usize] = if args.quick { &[50] } else { &[25, 100, 300] };
    let started = std::time::Instant::now();
    for data in &datasets {
        for &c in c_values {
            match svt_experiments::figures::allocation_ablation(data, &config, c, grid_points) {
                Ok(table) => {
                    let stem = format!(
                        "ablation_{}_c{c}",
                        data.name.to_lowercase().replace('-', "_")
                    );
                    svt_experiments::cli::emit(&table, &args, &stem);
                }
                Err(e) => {
                    eprintln!("ablation failed on {} (c={c}): {e}", data.name);
                    std::process::exit(1);
                }
            }
        }
    }
    eprintln!("ablation completed in {:.1?}", started.elapsed());
}
