//! `crash_smoke`: a real kill-and-restart crash-recovery check, built
//! for CI.
//!
//! Unlike the in-process simulated crash inside `serve_smoke`, this
//! binary dies for real. It runs in two phases across two *processes*:
//!
//! ```text
//! crash_smoke <dir> crash     # registers tenants, opens sessions
//!                             # through a WAL-backed store, journals
//!                             # every acknowledged charge to
//!                             # <dir>/acked.log, then abort(2)s
//!                             # mid-workload — no destructors, no
//!                             # clean shutdown.
//! crash_smoke <dir> recover   # a fresh process replays the WAL dir,
//!                             # re-verifies every receipt chain, and
//!                             # asserts the recovered spent ε matches
//!                             # the pre-crash acknowledgement journal
//!                             # exactly; then proves the recovered
//!                             # store still serves.
//! ```
//!
//! The acknowledgement journal is written (and fsynced) strictly
//! *after* the store acknowledges each charge, and the abort happens
//! strictly after a journal write — so at the moment of death the WAL
//! holds exactly the journalled charges, and recovery must reproduce
//! them bit-for-bit. The `crash` phase is expected to exit via
//! `SIGABRT`; a clean exit means the workload never reached its abort
//! point and is itself a failure (CI checks the exit status).

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::Path;
use std::process::ExitCode;

use dp_mechanisms::wal::FsyncPolicy;
use dp_mechanisms::SvtBudget;
use svt_core::alg::StandardSvtConfig;
use svt_server::{ServerConfig, SessionStore, TenantId};

const TENANTS: u64 = 8;
const SESSION_EPSILON: f64 = 0.5;
const ROUNDS: u64 = 3;
/// The workload aborts after acknowledging (and journalling) this many
/// charges — mid round 3, so every tenant has live history and some
/// tenants have strictly more than others.
const ABORT_AFTER: u64 = 20;

fn server_config() -> ServerConfig {
    ServerConfig {
        shards: 4,
        ..Default::default()
    }
}

fn svt_config() -> StandardSvtConfig {
    StandardSvtConfig {
        budget: SvtBudget::halves(SESSION_EPSILON).unwrap(),
        sensitivity: 1.0,
        c: 4,
        monotonic: true,
    }
}

/// Phase 1: charge through the WAL, journal each acknowledgement, die.
fn crash(dir: &Path) -> ExitCode {
    if dir.exists() {
        std::fs::remove_dir_all(dir).expect("clearing a stale smoke dir");
    }
    std::fs::create_dir_all(dir).expect("creating the smoke dir");
    let store = SessionStore::with_wal_dir(server_config(), dir, FsyncPolicy::Always)
        .expect("opening a fresh WAL dir");
    let mut journal = OpenOptions::new()
        .create_new(true)
        .append(true)
        .open(dir.join("acked.log"))
        .expect("creating the acknowledgement journal");
    for t in 0..TENANTS {
        store
            .register_tenant(TenantId(t), 100.0)
            .expect("registration against a healthy log");
    }
    let mut acked = 0u64;
    for round in 0..ROUNDS {
        for t in 0..TENANTS {
            let session = store
                .open_session(TenantId(t), svt_config(), round * TENANTS + t)
                .expect("open against a healthy log");
            // The charge is acknowledged (hence WAL-fsynced) before the
            // journal line exists; the journal is therefore always a
            // subset of the WAL, and the abort right after a journal
            // write makes the two exactly equal at the moment of death.
            writeln!(journal, "{t} {}", SESSION_EPSILON.to_bits()).unwrap();
            journal.sync_data().unwrap();
            // Queries ride the open session but never touch the WAL.
            store.submit(session, -1e9, 0.0).expect("a free ⊥ answer");
            acked += 1;
            if acked == ABORT_AFTER {
                eprintln!("crash_smoke: aborting after {acked} acknowledged charges");
                std::process::abort();
            }
        }
    }
    eprintln!("crash_smoke: workload completed without reaching the abort point");
    ExitCode::FAILURE
}

/// Phase 2: fresh process — replay, audit, compare, keep serving.
fn recover(dir: &Path) -> ExitCode {
    let mut acked: BTreeMap<u64, f64> = BTreeMap::new();
    let journal = BufReader::new(File::open(dir.join("acked.log")).expect("journal must exist"));
    let mut lines = 0u64;
    for line in journal.lines() {
        let line = line.unwrap();
        let (tenant, bits) = line.split_once(' ').expect("journal line shape");
        let eps = f64::from_bits(bits.parse().unwrap());
        *acked.entry(tenant.parse().unwrap()).or_insert(0.0) += eps;
        lines += 1;
    }
    assert_eq!(lines, ABORT_AFTER, "journal must hold every acked charge");

    let (store, report) = SessionStore::recover_wal_dir(server_config(), dir, FsyncPolicy::Always)
        .expect("an aborted writer's log must replay");
    store.verify_all().expect("every receipt chain re-verifies");
    assert_eq!(report.tenants, TENANTS as usize);
    for t in 0..TENANTS {
        let spent = store.ledger_view(TenantId(t)).unwrap().spent;
        let expected = acked.get(&t).copied().unwrap_or(0.0);
        assert_eq!(
            spent.to_bits(),
            expected.to_bits(),
            "tenant {t}: recovered {spent} ε vs journalled {expected} ε"
        );
    }

    // The recovered store is live, not a post-mortem: open and serve.
    let session = store
        .open_session(TenantId(0), svt_config(), 9_000)
        .expect("the recovered store keeps serving");
    store
        .submit(session, -1e9, 0.0)
        .expect("answer after recovery");
    store
        .verify_all()
        .expect("chains stay clean after new charges");

    println!(
        "crash_smoke: recovery OK ({} tenants, {} records, {} torn tail bytes, spent matches journal)",
        report.tenants, report.records, report.torn_tail_bytes
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    match args.as_slice() {
        [_, dir, phase] if phase == "crash" => crash(Path::new(dir)),
        [_, dir, phase] if phase == "recover" => recover(Path::new(dir)),
        _ => {
            eprintln!("usage: crash_smoke <dir> <crash|recover>");
            ExitCode::FAILURE
        }
    }
}
