//! Regenerates Table 1 (dataset characteristics).

fn main() {
    let args = svt_experiments::cli::parse_args();
    svt_experiments::cli::emit(&svt_experiments::figures::table1(), &args, "table1");
}
