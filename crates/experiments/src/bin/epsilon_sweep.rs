//! Regenerates the ε sweep (extension): SER at fixed `c` across
//! privacy budgets, for the historical 1:1 SVT, the optimized SVT-S,
//! and EM. The paper omits these panels for space, noting the effect of
//! ε mirrors the effect of c (accuracy is driven by ε/c); this sweep
//! makes that equivalence observable.

fn main() {
    let args = svt_experiments::cli::parse_args();
    let mut config = svt_experiments::cli::resolve_config(&args);
    config.c_values = vec![];
    let datasets = svt_experiments::cli::resolve_datasets(&args);
    let epsilons: &[f64] = if args.quick {
        &[0.05, 0.1, 0.4]
    } else {
        &[0.025, 0.05, 0.1, 0.2, 0.4, 0.8, 1.6]
    };
    let c = 100;
    let started = std::time::Instant::now();
    for data in &datasets {
        match svt_experiments::figures::epsilon_sweep(data, &config, c, epsilons) {
            Ok(table) => {
                let stem = format!(
                    "epsilon_sweep_{}",
                    data.name.to_lowercase().replace('-', "_")
                );
                svt_experiments::cli::emit(&table, &args, &stem);
            }
            Err(e) => {
                eprintln!("epsilon_sweep failed on {}: {e}", data.name);
                std::process::exit(1);
            }
        }
    }
    eprintln!("epsilon_sweep completed in {:.1?}", started.elapsed());
}
