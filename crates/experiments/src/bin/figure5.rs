//! Regenerates Figure 5: the non-interactive comparison (SVT-S,
//! SVT-ReTr-1D..5D, EM), SER and FNR on all four datasets.

fn main() {
    let args = svt_experiments::cli::parse_args();
    let config = svt_experiments::cli::resolve_config(&args);
    let datasets = svt_experiments::cli::resolve_datasets(&args);
    let started = std::time::Instant::now();
    match svt_experiments::figures::figure5(&datasets, &config) {
        Ok(panels) => {
            for panel in &panels {
                let stem = format!(
                    "figure5_{}_{}",
                    panel.dataset.to_lowercase().replace('-', "_"),
                    panel.metric.to_lowercase()
                );
                svt_experiments::cli::emit(&panel.table, &args, &stem);
            }
            eprintln!("figure5 completed in {:.1?}", started.elapsed());
        }
        Err(e) => {
            eprintln!("figure5 failed: {e}");
            std::process::exit(1);
        }
    }
}
