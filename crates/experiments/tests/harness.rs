//! Integration tests for the evaluation harness: the grouped engine
//! must be a bit-level mirror of the exact per-query traversal (same
//! index streams, equal cell results from the same master seed),
//! sweeps must be deterministic, and the figure builders must
//! reproduce the paper's qualitative orderings on scaled-down grids.

use dp_data::{DatasetSpec, ScoreVector};
use svt_core::allocation::BudgetRatio;
use svt_experiments::runner::{run_cell, PreparedDataset};
use svt_experiments::spec::{AlgorithmSpec, ExperimentConfig, SimulationMode};

fn tiered_scores() -> ScoreVector {
    // Three tiers with heavy ties — the stress case for the grouped
    // engine's hypergeometric tie handling.
    let mut v = vec![1_000.0; 10];
    v.extend(vec![300.0; 30]);
    v.extend(vec![50.0; 160]);
    ScoreVector::new(v).unwrap()
}

fn config(mode: SimulationMode, runs: usize, seed: u64) -> ExperimentConfig {
    ExperimentConfig {
        epsilon: 0.4,
        runs,
        c_values: vec![],
        seed,
        threads: 4,
        mode,
    }
}

/// The tentpole contract at the integration level: both engines run
/// the same draw protocol over the shared per-dataset SweepContext, so
/// from the *same master seed* a cell under either engine is **equal**
/// — identical index streams per run, hence identical metric
/// summaries. Every algorithm is covered, including SVT-DPBook, which
/// the old aggregate grouped engine had to refuse.
#[test]
fn grouped_engine_is_a_bit_level_mirror_of_the_exact_engine() {
    let data = PreparedDataset::new("tiered", tiered_scores());
    let algorithms = [
        AlgorithmSpec::DpBook,
        AlgorithmSpec::Standard {
            ratio: BudgetRatio::OneToCTwoThirds,
        },
        AlgorithmSpec::Standard {
            ratio: BudgetRatio::OneToOne,
        },
        AlgorithmSpec::Retraversal {
            ratio: BudgetRatio::OneToCTwoThirds,
            increment_d: 2.0,
        },
        AlgorithmSpec::Em,
    ];
    let runs = 200;
    for alg in &algorithms {
        for &c in &[5usize, 20] {
            let exact = run_cell(&data, alg, c, &config(SimulationMode::Exact, runs, 101)).unwrap();
            let grouped =
                run_cell(&data, alg, c, &config(SimulationMode::Grouped, runs, 101)).unwrap();
            assert_eq!(exact, grouped, "{alg:?} c={c}: engines diverged");
        }
    }
}

#[test]
fn engines_are_bit_identical_on_real_workload_slice() {
    // The Zipf workload head (cheap but realistic: distinct scores in
    // the head, massive ties in the tail) — the stress case for the
    // grouped score resolution, since head items sit in singleton
    // groups and tail items in huge runs.
    let scores = DatasetSpec::zipf().scores();
    let head: Vec<f64> = scores.as_slice().iter().take(3_000).copied().collect();
    let data = PreparedDataset::new("zipf-head", ScoreVector::new(head).unwrap());
    let alg = AlgorithmSpec::Standard {
        ratio: BudgetRatio::OneToCTwoThirds,
    };
    let runs = 400;
    let exact = run_cell(&data, &alg, 25, &config(SimulationMode::Exact, runs, 77)).unwrap();
    let grouped = run_cell(&data, &alg, 25, &config(SimulationMode::Grouped, runs, 77)).unwrap();
    assert_eq!(exact, grouped);
}

#[test]
fn sweep_results_are_bit_identical_across_thread_counts() {
    let data = PreparedDataset::new("tiered", tiered_scores());
    let alg = AlgorithmSpec::Retraversal {
        ratio: BudgetRatio::OneToCTwoThirds,
        increment_d: 3.0,
    };
    let mut one = config(SimulationMode::Auto, 50, 5);
    one.threads = 1;
    let mut many = config(SimulationMode::Auto, 50, 5);
    many.threads = 7;
    let a = run_cell(&data, &alg, 10, &one).unwrap();
    let b = run_cell(&data, &alg, 10, &many).unwrap();
    assert_eq!(a, b);
}

/// Scaled-down Figure 4: the paper's qualitative ordering —
/// SVT-DPBook ≫ SVT-S-1:1 ≥ SVT-S-1:c^{2/3} in SER — checked on
/// Kosarak at c = 50, the paper's own headline separation point
/// (Kosarak, ε = 0.1, c = 50: DPBook SER 0.705, all SVT-S < 0.05).
/// On Zipf at the same c every method saturates (also as in the
/// paper's panels), so there is nothing to separate there.
#[test]
fn figure4_ordering_holds_on_kosarak_at_moderate_c() {
    let data = PreparedDataset::new("Kosarak", DatasetSpec::kosarak().scores());
    let cfg = ExperimentConfig {
        epsilon: 0.1,
        runs: 30,
        c_values: vec![],
        seed: 424242,
        threads: 0,
        mode: SimulationMode::Auto,
    };
    let c = 50;
    let ser_of = |alg: &AlgorithmSpec| run_cell(&data, alg, c, &cfg).unwrap().ser.mean;
    let dpbook = ser_of(&AlgorithmSpec::DpBook);
    let one_one = ser_of(&AlgorithmSpec::Standard {
        ratio: BudgetRatio::OneToOne,
    });
    let optimized = ser_of(&AlgorithmSpec::Standard {
        ratio: BudgetRatio::OneToCTwoThirds,
    });
    assert!(
        dpbook > one_one + 0.1,
        "DPBook should be clearly worse: {dpbook:.3} vs {one_one:.3}"
    );
    assert!(
        optimized <= one_one + 0.02,
        "optimized allocation must not lose: {optimized:.3} vs {one_one:.3}"
    );
}

/// Scaled-down Figure 5: EM must beat plain SVT-S on a hard instance
/// (the paper's non-interactive headline).
#[test]
fn figure5_em_beats_svt_on_zipf_at_large_c() {
    let data = PreparedDataset::new("Zipf", DatasetSpec::zipf().scores());
    let cfg = ExperimentConfig {
        epsilon: 0.1,
        runs: 30,
        c_values: vec![],
        seed: 3434,
        threads: 0,
        mode: SimulationMode::Auto,
    };
    let c = 75;
    let em = run_cell(&data, &AlgorithmSpec::Em, c, &cfg)
        .unwrap()
        .ser
        .mean;
    let svt = run_cell(
        &data,
        &AlgorithmSpec::Standard {
            ratio: BudgetRatio::OneToCTwoThirds,
        },
        c,
        &cfg,
    )
    .unwrap()
    .ser
    .mean;
    assert!(em < svt, "EM {em:.3} should beat SVT-S {svt:.3}");
}

#[test]
fn errors_increase_with_c_for_svt() {
    // More selections on a fixed budget ⇒ more noise per comparison ⇒
    // higher SER (the x-axis trend of every Figure 4 panel).
    let data = PreparedDataset::new("Zipf", DatasetSpec::zipf().scores());
    let cfg = ExperimentConfig {
        epsilon: 0.1,
        runs: 25,
        c_values: vec![],
        seed: 5151,
        threads: 0,
        mode: SimulationMode::Auto,
    };
    let alg = AlgorithmSpec::Standard {
        ratio: BudgetRatio::OneToCTwoThirds,
    };
    let small = run_cell(&data, &alg, 25, &cfg).unwrap().ser.mean;
    let large = run_cell(&data, &alg, 250, &cfg).unwrap().ser.mean;
    assert!(
        large > small,
        "SER should grow with c: c=25 → {small:.3}, c=250 → {large:.3}"
    );
}

#[test]
fn ser_and_fnr_correlate_across_cells() {
    // §6: "the correlation between them is quite stable" — check the
    // two metrics rank a spread of algorithms the same way.
    let data = PreparedDataset::new("Zipf", DatasetSpec::zipf().scores());
    let cfg = ExperimentConfig {
        epsilon: 0.1,
        runs: 20,
        c_values: vec![],
        seed: 6161,
        threads: 0,
        mode: SimulationMode::Auto,
    };
    let algs = [
        AlgorithmSpec::DpBook,
        AlgorithmSpec::Standard {
            ratio: BudgetRatio::OneToOne,
        },
        AlgorithmSpec::Standard {
            ratio: BudgetRatio::OneToCTwoThirds,
        },
        AlgorithmSpec::Em,
    ];
    let cells: Vec<(f64, f64)> = algs
        .iter()
        .map(|alg| {
            let cell = run_cell(&data, alg, 100, &cfg).unwrap();
            (cell.ser.mean, cell.fnr.mean)
        })
        .collect();
    // "The correlation between them is quite stable": every pair of
    // cells that is clearly separated in SER (> 0.1 apart) must be
    // ordered the same way in FNR. Near-ties are allowed to flip —
    // saturated cells differ only by Monte-Carlo noise.
    for i in 0..cells.len() {
        for j in 0..cells.len() {
            if cells[i].0 > cells[j].0 + 0.1 {
                assert!(
                    cells[i].1 > cells[j].1,
                    "SER and FNR disagree on cells {i}/{j}: {cells:?}"
                );
            }
        }
    }
}
