//! # sparse-vector
//!
//! A production-quality Rust reproduction of **“Understanding the
//! Sparse Vector Technique for Differential Privacy”** (Min Lyu,
//! Dong Su, Ninghui Li; VLDB 2017, arXiv:1603.01699).
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`mechanisms`] — DP primitives: Laplace/Gumbel distributions,
//!   the Exponential Mechanism, report-noisy-max, budget accounting,
//!   discrete samplers, and the seedable [`DpRng`].
//! * [`data`] — workloads: score vectors, transaction datasets,
//!   counting queries, and the four Table-1 dataset generators.
//! * [`svt`] — the paper's contribution: Algorithms 1–7, budget
//!   allocation optimization, SVT-ReTr, EM top-`c` selection, the
//!   interactive session/mediator, and the Figure-2 catalog.
//! * [`server`] — multi-tenant serving: the sharded session store,
//!   batched query submission, and the auditable budget ledger views.
//! * [`auditor`] — empirical privacy auditing and the paper's
//!   non-privacy counterexamples.
//! * [`experiments`] — the harness that regenerates every table and
//!   figure.
//!
//! ## Quickstart
//!
//! ```
//! use sparse_vector::prelude::*;
//!
//! // Private top-20 selection from item supports under ε = 0.1.
//! let scores = DatasetSpec::zipf().scores();
//! let mut rng = DpRng::seed_from_u64(7);
//!
//! // The paper's recommendation for the non-interactive setting: EM.
//! let em = EmTopC::new(0.1, 20, 1.0, true).unwrap();
//! let selected = em.select(scores.as_slice(), &mut rng).unwrap();
//! assert_eq!(selected.len(), 20);
//!
//! // The paper's recommendation for the interactive setting: SVT-S
//! // with the optimized 1:c^(2/3) budget split.
//! let cfg = SvtSelectConfig::counting(0.1, 20, BudgetRatio::OneToCTwoThirds);
//! let threshold = scores.paper_threshold(20);
//! let svt_selected = svt_select(scores.as_slice(), threshold, &cfg, &mut rng).unwrap();
//! assert!(svt_selected.len() <= 20);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use dp_auditor as auditor;
pub use dp_data as data;
pub use dp_mechanisms as mechanisms;
pub use svt_core as svt;
pub use svt_experiments as experiments;
pub use svt_server as server;

/// The most commonly used types, re-exported flat.
pub mod prelude {
    pub use dp_auditor::{audit_event, audit_output_grid, GridAudit, RatioAudit};
    pub use dp_data::{DatasetSpec, GroupedSnapshot, LiveScores, ScoreVector, TransactionDataset};
    pub use dp_mechanisms::{
        geometric_mechanism, ApproxDp, BudgetAccountant, DpRng, ExponentialMechanism, Laplace,
        SvtBudget, TwoSidedGeometric,
    };
    pub use svt_core::alg::{run_svt, SparseVector, StandardSvt, StandardSvtConfig};
    pub use svt_core::allocation::BudgetRatio;
    pub use svt_core::approx::{ApproxSvt, ApproxSvtConfig, ApproxSvtPlan};
    pub use svt_core::em_select::EmTopC;
    pub use svt_core::interactive::{HistoryMediator, InteractiveSvtSession};
    pub use svt_core::noninteractive::{dpbook_select, svt_select, SvtSelectConfig};
    pub use svt_core::retraversal::{svt_retraversal, RetraversalConfig};
    pub use svt_core::{Alg1, Alg2, Alg3, Alg4, Alg5, Alg6, SvtAnswer, Thresholds};
}
