//! Cross-crate privacy smoke tests: the paper's headline privacy
//! claims, checked empirically at moderate trial counts.
//!
//! (The heavyweight versions with tight intervals live in the
//! `nonprivacy` experiment binary; these keep CI honest.)

use sparse_vector::auditor::counterexamples as cx;
use sparse_vector::auditor::{audit_event, RatioAudit};
use sparse_vector::prelude::*;
use sparse_vector::svt::alg::run_svt;

/// Audits Alg. 1 end-to-end on a mixed ⊤/⊥ output event (not just the
/// all-⊥ Lemma 1 shape): the measured loss must stay within ε.
fn audit_alg1_mixed_event(epsilon: f64, trials: u64, rng: &mut DpRng) -> RatioAudit {
    // q(D) = <2, -2, 2>, q(D') = <1, -1, 1> (each query moved by Δ = 1),
    // target output ⊤⊥⊤ with c = 2.
    let queries_d = [2.0, -2.0, 2.0];
    let queries_d_prime = [1.0, -1.0, 1.0];
    let target = [true, false, true];
    let run = |queries: &[f64; 3], r: &mut DpRng| -> bool {
        let mut alg = Alg1::new(epsilon, 1.0, 2, r).unwrap();
        let run = run_svt(&mut alg, queries, &Thresholds::Constant(0.0), r).unwrap();
        if run.answers.len() != 3 {
            return false;
        }
        run.answers
            .iter()
            .zip(target)
            .all(|(a, want)| a.is_positive() == want)
    };
    audit_event(
        |r| run(&queries_d, r),
        |r| run(&queries_d_prime, r),
        trials,
        0.975,
        rng,
    )
}

#[test]
fn alg1_mixed_output_respects_epsilon() {
    let mut rng = DpRng::seed_from_u64(907);
    let epsilon = 1.5;
    let audit = audit_alg1_mixed_event(epsilon, 60_000, &mut rng);
    assert!(audit.on_d.successes > 1000, "need signal");
    assert!(
        !audit.refutes_epsilon_dp(epsilon),
        "Alg. 1 refuted?! bound {}",
        audit.epsilon_lower_bound()
    );
    // The point ratio must also be consistent with e^ε.
    let ratio = audit.point_epsilon().exp();
    assert!(ratio < epsilon.exp() * 1.2, "ratio {ratio}");
}

#[test]
fn alg5_is_refuted_quickly() {
    let mut rng = DpRng::seed_from_u64(911);
    let audit = cx::audit_alg5_theorem3(1.0, 20_000, 0.975, &mut rng);
    assert!(audit.refutes_epsilon_dp(1.0));
    assert!(
        audit.refutes_epsilon_dp(4.0),
        "bound {}",
        audit.epsilon_lower_bound()
    );
}

#[test]
fn alg6_ratio_grows_with_m() {
    let mut rng = DpRng::seed_from_u64(919);
    let a2 = cx::audit_alg6_theorem7(2.0, 2, 120_000, 0.975, &mut rng);
    let a4 = cx::audit_alg6_theorem7(2.0, 4, 120_000, 0.975, &mut rng);
    assert!(
        a2.on_d.successes > 100 && a4.on_d.successes > 20,
        "need signal"
    );
    assert!(
        a4.point_epsilon() > a2.point_epsilon(),
        "ratio must grow with m: {} vs {}",
        a2.point_epsilon(),
        a4.point_epsilon()
    );
}

#[test]
fn standard_svt_numeric_phase_does_not_leak_like_alg3() {
    // Alg. 3's flaw: releasing the comparison noise. Alg. 7 releases a
    // FRESH perturbation, so the Theorem 6 witness must NOT refute it.
    // Event: ⊥^m then numeric near 0 under Alg. 7 with ε₃ > 0.
    let m = 4usize;
    let epsilon = 2.0;
    let run = |queries: &[f64], r: &mut DpRng| -> bool {
        let config = StandardSvtConfig {
            budget: SvtBudget::new(epsilon / 3.0, epsilon / 3.0, epsilon / 3.0).unwrap(),
            sensitivity: 1.0,
            c: 1,
            monotonic: false,
        };
        let mut alg = StandardSvt::new(config, r).unwrap();
        for (i, &q) in queries.iter().enumerate() {
            let answer = alg.respond(q, 0.0, r).unwrap();
            let is_last = i == queries.len() - 1;
            match (is_last, answer) {
                (false, SvtAnswer::Below) => continue,
                (true, SvtAnswer::Numeric(v)) => return v.abs() <= 0.25,
                _ => return false,
            }
        }
        false
    };
    let mut queries_d = vec![0.0; m];
    queries_d.push(1.0);
    let mut queries_d_prime = vec![1.0; m];
    queries_d_prime.push(0.0);
    let mut rng = DpRng::seed_from_u64(929);
    let audit = audit_event(
        |r| run(&queries_d, r),
        |r| run(&queries_d_prime, r),
        150_000,
        0.975,
        &mut rng,
    );
    assert!(audit.on_d.successes > 50, "need signal on D");
    assert!(
        !audit.refutes_epsilon_dp(epsilon),
        "Alg. 7 numeric phase refuted?! bound {} (point ratio {:.2})",
        audit.epsilon_lower_bound(),
        audit.point_epsilon().exp()
    );
}

#[test]
fn alg4_violates_nominal_but_not_inflated_epsilon() {
    // Alg. 4 with c = 2, ε = 1: claimed 1-DP, actual ((1+6·2)/4) = 3.25.
    // Witness: two strong positives on D vs weak on D' — its missing
    // factor-of-c noise makes positives too cheap.
    let epsilon = 1.0;
    let run = |queries: &[f64; 4], r: &mut DpRng| -> bool {
        let mut alg = Alg4::new(epsilon, 1.0, 2, r).unwrap();
        let out = run_svt(&mut alg, queries, &Thresholds::Constant(0.0), r).unwrap();
        out.answers.len() >= 2 && out.answers[0].is_positive() && out.answers[1].is_positive()
    };
    let d = [3.0, 3.0, 0.0, 0.0];
    let d_prime = [2.0, 2.0, 1.0, 1.0];
    let mut rng = DpRng::seed_from_u64(937);
    let audit = audit_event(
        |r| run(&d, r),
        |r| run(&d_prime, r),
        150_000,
        0.975,
        &mut rng,
    );
    // Not strong enough to break the nominal ε here necessarily, but the
    // inflated bound must never be violated.
    let inflated = (1.0 + 6.0 * 2.0) / 4.0 * epsilon;
    assert!(
        !audit.refutes_epsilon_dp(inflated),
        "inflated bound broken: {}",
        audit.epsilon_lower_bound()
    );
}

#[test]
fn em_selection_probability_ratio_respects_epsilon() {
    // Exact (non-Monte-Carlo) check through the public API.
    let em = ExponentialMechanism::new(0.8, 1.0).unwrap();
    let d = [10.0, 7.0, 3.0, 0.0];
    let d_prime = [9.0, 8.0, 2.0, 1.0]; // each score moved by Δ = 1
    let p = em.selection_probabilities(&d).unwrap();
    let q = em.selection_probabilities(&d_prime).unwrap();
    for i in 0..4 {
        let ratio = p[i] / q[i];
        assert!(ratio <= 0.8f64.exp() + 1e-9, "i={i} ratio {ratio}");
        assert!(ratio >= (-0.8f64).exp() - 1e-9, "i={i} ratio {ratio}");
    }
}
