//! End-to-end pipeline tests: dataset generation → private selection →
//! utility metrics, across crates through the facade API.

use sparse_vector::experiments::{false_negative_rate, score_error_rate};
use sparse_vector::prelude::*;

#[test]
fn zipf_workload_em_selection_pipeline() {
    let scores = DatasetSpec::zipf().scores();
    assert_eq!(scores.len(), 10_000);
    let c = 25;
    let true_top = scores.top_c(c);
    let mut rng = DpRng::seed_from_u64(811);
    let em = EmTopC::new(0.1, c, 1.0, true).unwrap();
    let selected = em.select(scores.as_slice(), &mut rng).unwrap();
    assert_eq!(selected.len(), c);
    let fnr = false_negative_rate(&selected, &true_top);
    let ser = score_error_rate(&selected, &true_top, scores.as_slice());
    // At c = 25 on Zipf the paper's Figure 5 shows EM nearly perfect;
    // allow generous slack for a single run.
    assert!(fnr < 0.5, "fnr {fnr}");
    assert!(ser < 0.3, "ser {ser}");
}

#[test]
fn transaction_dataset_round_trip_through_svt() {
    // supports → transactions → supports → SVT selection.
    let mut rng = DpRng::seed_from_u64(821);
    let targets: Vec<u64> = (1..=100u64).map(|r| 600 / r).collect();
    let data = TransactionDataset::from_target_supports(&targets, 700, &mut rng);
    let scores = data.score_vector().unwrap();
    assert_eq!(scores.as_slice()[0], 600.0);
    let c = 10;
    let cfg = SvtSelectConfig::counting(2.0, c, BudgetRatio::OneToCTwoThirds);
    let threshold = scores.paper_threshold(c);
    let selected = svt_select(scores.as_slice(), threshold, &cfg, &mut rng).unwrap();
    assert!(selected.len() <= c);
    for &i in &selected {
        assert!(i < 100);
    }
}

#[test]
fn all_four_datasets_generate_with_table1_shapes() {
    for spec in DatasetSpec::all() {
        let scores = spec.scores();
        assert_eq!(scores.len(), spec.n_items, "{}", spec.name);
        assert!(scores.max() <= spec.n_records as f64, "{}", spec.name);
        // Non-increasing by construction (rank order).
        let s = scores.as_slice();
        assert!(
            s.windows(2).all(|w| w[0] >= w[1]),
            "{} not rank-ordered",
            spec.name
        );
    }
}

#[test]
fn interactive_session_budget_is_paid_once() {
    let mut rng = DpRng::seed_from_u64(823);
    let config = StandardSvtConfig {
        budget: SvtBudget::halves(0.6).unwrap(),
        sensitivity: 1.0,
        c: 2,
        monotonic: true,
    };
    let mut session = InteractiveSvtSession::open(1.0, config, &mut rng).unwrap();
    // 500 below-threshold queries are free.
    for _ in 0..500 {
        let a = session.ask(-1e6, 0.0, &mut rng).unwrap();
        assert_eq!(a, SvtAnswer::Below);
    }
    assert!((session.remaining_budget() - 0.4).abs() < 1e-9);
}

#[test]
fn run_svt_full_stream_over_variants() {
    // All six variants process the same stream through the same trait.
    let mut rng = DpRng::seed_from_u64(827);
    let answers: Vec<f64> = (0..30)
        .map(|i| if i % 7 == 0 { 50.0 } else { -50.0 })
        .collect();
    let thresholds = Thresholds::Constant(0.0);

    let mut variants: Vec<Box<dyn sparse_vector::svt::alg::SparseVector>> = vec![
        Box::new(Alg1::new(5.0, 1.0, 3, &mut rng).unwrap()),
        Box::new(Alg2::new(5.0, 1.0, 3, &mut rng).unwrap()),
        Box::new(Alg3::new(5.0, 1.0, 3, &mut rng).unwrap()),
        Box::new(Alg4::new(5.0, 1.0, 3, &mut rng).unwrap()),
        Box::new(Alg5::new(5.0, 1.0, &mut rng).unwrap()),
        Box::new(Alg6::new(5.0, 1.0, &mut rng).unwrap()),
    ];
    for variant in &mut variants {
        let run =
            sparse_vector::svt::alg::run_svt(variant.as_mut(), &answers, &thresholds, &mut rng)
                .unwrap();
        assert!(run.examined() <= 30);
        assert!(run.positives() <= run.examined());
        // Bounded variants never exceed c = 3 positives.
        if !matches!(
            variant.name(),
            "Alg. 5 (Stoddard+ '14)" | "Alg. 6 (Chen+ '15)"
        ) {
            assert!(run.positives() <= 3, "{}", variant.name());
        }
    }
}

#[test]
fn facade_prelude_compiles_the_doc_example() {
    // Mirrors the lib.rs doc example to keep it honest.
    let scores = DatasetSpec::zipf().scores();
    let mut rng = DpRng::seed_from_u64(7);
    let em = EmTopC::new(0.1, 20, 1.0, true).unwrap();
    let selected = em.select(scores.as_slice(), &mut rng).unwrap();
    assert_eq!(selected.len(), 20);
    let cfg = SvtSelectConfig::counting(0.1, 20, BudgetRatio::OneToCTwoThirds);
    let threshold = scores.paper_threshold(20);
    let svt_selected = svt_select(scores.as_slice(), threshold, &cfg, &mut rng).unwrap();
    assert!(svt_selected.len() <= 20);
}
