//! Reproducibility guarantees: every stochastic pipeline in the
//! workspace is a pure function of its master seed.

use sparse_vector::experiments::runner::{run_cell, PreparedDataset};
use sparse_vector::experiments::spec::{AlgorithmSpec, ExperimentConfig, SimulationMode};
use sparse_vector::prelude::*;

fn toy_dataset() -> PreparedDataset {
    let mut v = vec![300.0; 8];
    v.extend(vec![30.0; 92]);
    PreparedDataset::new("toy", ScoreVector::new(v).unwrap())
}

#[test]
fn svt_selection_is_seed_deterministic() {
    let scores = DatasetSpec::bms_pos().scores();
    let cfg = SvtSelectConfig::counting(0.1, 25, BudgetRatio::OneToCTwoThirds);
    let threshold = scores.paper_threshold(25);
    let run = |seed: u64| {
        let mut rng = DpRng::seed_from_u64(seed);
        svt_select(scores.as_slice(), threshold, &cfg, &mut rng).unwrap()
    };
    assert_eq!(run(99), run(99));
    assert_ne!(run(99), run(100));
}

#[test]
fn em_selection_is_seed_deterministic() {
    let scores = DatasetSpec::zipf().scores();
    let em = EmTopC::new(0.1, 50, 1.0, true).unwrap();
    let run = |seed: u64| {
        let mut rng = DpRng::seed_from_u64(seed);
        em.select(scores.as_slice(), &mut rng).unwrap()
    };
    assert_eq!(run(3), run(3));
}

#[test]
fn retraversal_is_seed_deterministic() {
    let scores = DatasetSpec::bms_pos().scores();
    let cfg = RetraversalConfig::paper(0.1, 25, 3.0);
    let run = |seed: u64| {
        let mut rng = DpRng::seed_from_u64(seed);
        svt_retraversal(
            scores.as_slice(),
            scores.paper_threshold(25),
            &cfg,
            &mut rng,
        )
        .unwrap()
        .selected
    };
    assert_eq!(run(5), run(5));
}

#[test]
fn experiment_cells_are_seed_and_thread_deterministic() {
    let data = toy_dataset();
    let alg = AlgorithmSpec::Standard {
        ratio: BudgetRatio::OneToCTwoThirds,
    };
    let base = ExperimentConfig {
        epsilon: 0.3,
        runs: 16,
        c_values: vec![8],
        seed: 1234,
        threads: 1,
        mode: SimulationMode::Auto,
    };
    let mut threaded = base.clone();
    threaded.threads = 7;
    let a = run_cell(&data, &alg, 8, &base).unwrap();
    let b = run_cell(&data, &alg, 8, &threaded).unwrap();
    assert_eq!(a, b, "thread count must not change results");

    let mut reseeded = base.clone();
    reseeded.seed = 4321;
    let c = run_cell(&data, &alg, 8, &reseeded).unwrap();
    assert_ne!(a, c, "different seeds must differ");
}

#[test]
fn audits_are_seed_deterministic() {
    use sparse_vector::auditor::counterexamples::audit_alg5_theorem3;
    let run = |seed: u64| {
        let mut rng = DpRng::seed_from_u64(seed);
        audit_alg5_theorem3(1.0, 5_000, 0.95, &mut rng)
    };
    assert_eq!(run(17).on_d.successes, run(17).on_d.successes);
    assert_eq!(
        run(17).epsilon_lower_bound().to_bits(),
        run(17).epsilon_lower_bound().to_bits()
    );
}

#[test]
fn dataset_generation_is_pure() {
    // No hidden randomness in the generators.
    for spec in DatasetSpec::all() {
        if spec.name == "AOL" {
            continue; // covered by its own test; skip the 2.29M regen here
        }
        assert_eq!(spec.supports(), spec.supports(), "{}", spec.name);
    }
}
