//! Facade coverage: every `prelude` re-export in `src/lib.rs` must
//! resolve, and the crate-level Quickstart path must run end-to-end
//! under a fixed seed.
//!
//! This test exists so that a future rename in a workspace crate cannot
//! silently break the public API: the facade's `prelude` is the contract
//! downstream users compile against.

use sparse_vector::prelude::*;

/// Touches every type and function the prelude re-exports. Type aliases
/// are enough for compile-time resolution; a handful are also exercised
/// at runtime below.
#[test]
fn every_prelude_reexport_resolves() {
    // dp_auditor: generic functions, exercised with tiny audits.
    let mut audit_rng = DpRng::seed_from_u64(11);
    let ratio: RatioAudit = audit_event(
        |r: &mut DpRng| r.bernoulli(0.5),
        |r: &mut DpRng| r.bernoulli(0.5),
        200,
        0.95,
        &mut audit_rng,
    );
    assert!(ratio.epsilon_lower_bound() >= 0.0);
    let grid: GridAudit<bool> = audit_output_grid(
        |r: &mut DpRng| r.bernoulli(0.5),
        |r: &mut DpRng| r.bernoulli(0.5),
        200,
        0.95,
        &mut audit_rng,
    );
    assert!(grid.epsilon_lower_bound() >= 0.0);

    // dp_data.
    let _: Option<DatasetSpec> = None;
    let _: Option<ScoreVector> = None;
    let _: Option<TransactionDataset> = None;

    // dp_mechanisms.
    let _: Option<ApproxDp> = None;
    let _: Option<BudgetAccountant> = None;
    let _: Option<DpRng> = None;
    let _: Option<ExponentialMechanism> = None;
    let _: Option<Laplace> = None;
    let _: Option<SvtBudget> = None;
    let _: Option<TwoSidedGeometric> = None;
    let mut rng = DpRng::seed_from_u64(1);
    let released = geometric_mechanism(10, 1.0, 1.0, &mut rng).unwrap();
    assert!(released > i64::MIN && released < i64::MAX);

    // svt_core::alg.
    let _: Option<StandardSvt> = None;
    let _: Option<StandardSvtConfig> = None;
    let _: Option<Box<dyn SparseVector>> = None;

    // svt_core flat re-exports.
    let _: Option<Alg1> = None;
    let _: Option<Alg2> = None;
    let _: Option<Alg3> = None;
    let _: Option<Alg4> = None;
    let _: Option<Alg5> = None;
    let _: Option<Alg6> = None;
    let _: Option<SvtAnswer> = None;
    let _: Option<Thresholds> = None;
    let _: Option<BudgetRatio> = None;
    let _: Option<ApproxSvt> = None;
    let _: Option<ApproxSvtConfig> = None;
    let _: Option<ApproxSvtPlan> = None;
    let _: Option<EmTopC> = None;
    let _: Option<HistoryMediator> = None;
    let _: Option<InteractiveSvtSession> = None;
    let _: Option<SvtSelectConfig> = None;
    let _: Option<RetraversalConfig> = None;
}

/// `run_svt`, `svt_select`, `dpbook_select`, and `svt_retraversal` are
/// function re-exports; bind them so renames fail to compile.
#[test]
fn function_reexports_resolve_and_run() {
    let mut rng = DpRng::seed_from_u64(2);
    let scores: Vec<f64> = (1..=50u64).map(|r| 1000.0 / r as f64).collect();
    let sv = ScoreVector::new(scores.clone()).unwrap();
    let threshold = sv.paper_threshold(5);

    let cfg = SvtSelectConfig::counting(1.0, 5, BudgetRatio::OneToCTwoThirds);
    let selected = svt_select(&scores, threshold, &cfg, &mut rng).unwrap();
    assert!(selected.len() <= 5);

    let dpb = dpbook_select(&scores, threshold, 1.0, 5, 1.0, &mut rng).unwrap();
    assert!(dpb.len() <= 5);

    let rcfg = RetraversalConfig::paper(1.0, 5, 1.0);
    let rt = svt_retraversal(&scores, threshold, &rcfg, &mut rng).unwrap();
    assert!(rt.selected.len() <= 5);

    let mut alg = Alg1::new(1.0, 1.0, 3, &mut rng).unwrap();
    let run = run_svt(
        &mut alg,
        &scores,
        &Thresholds::Constant(threshold),
        &mut rng,
    )
    .unwrap();
    assert!(run.positives() <= 3);
}

/// The crate-level Quickstart doctest, replayed as an integration test
/// under a fixed seed with its results pinned down further.
#[test]
fn quickstart_path_runs_end_to_end() {
    let scores = DatasetSpec::zipf().scores();
    let mut rng = DpRng::seed_from_u64(7);

    let em = EmTopC::new(0.1, 20, 1.0, true).unwrap();
    let selected = em.select(scores.as_slice(), &mut rng).unwrap();
    assert_eq!(selected.len(), 20);
    let mut dedup = selected.clone();
    dedup.sort_unstable();
    dedup.dedup();
    assert_eq!(dedup.len(), 20, "EM top-c selections must be distinct");

    let cfg = SvtSelectConfig::counting(0.1, 20, BudgetRatio::OneToCTwoThirds);
    let threshold = scores.paper_threshold(20);
    let svt_selected = svt_select(scores.as_slice(), threshold, &cfg, &mut rng).unwrap();
    assert!(svt_selected.len() <= 20);
    for &i in &svt_selected {
        assert!(i < scores.len());
    }
}

/// Identical seeds must reproduce the quickstart selection exactly —
/// the reproducibility contract the experiment harness relies on.
#[test]
fn quickstart_is_deterministic_under_fixed_seed() {
    let run = || {
        let scores = DatasetSpec::zipf().scores();
        let mut rng = DpRng::seed_from_u64(7);
        let em = EmTopC::new(0.1, 20, 1.0, true).unwrap();
        em.select(scores.as_slice(), &mut rng).unwrap()
    };
    assert_eq!(run(), run());
}

/// The module re-exports (`sparse_vector::{mechanisms, data, svt,
/// auditor, experiments}`) resolve as paths.
#[test]
fn module_reexports_resolve() {
    let _ = sparse_vector::mechanisms::Laplace::new(1.0).unwrap();
    let _ = sparse_vector::data::DatasetSpec::zipf();
    let _ = sparse_vector::svt::allocation::optimal_ratio(20, true);
    let _ = sparse_vector::auditor::estimate::BernoulliEstimate::from_counts(5, 10, 0.95);
    let _ = sparse_vector::experiments::spec::ExperimentConfig::quick();
}
