//! Workspace-level property-based tests: cross-crate invariants that
//! must hold for arbitrary configurations.

use proptest::prelude::*;
use sparse_vector::prelude::*;
use sparse_vector::svt::alg::run_svt;
use sparse_vector::svt::allocation;

fn scores_strategy() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..1e6, 2..120)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn svt_select_never_exceeds_c_or_duplicates(
        scores in scores_strategy(),
        c in 1usize..20,
        eps in 0.01f64..5.0,
        seed in any::<u64>(),
    ) {
        let mut rng = DpRng::seed_from_u64(seed);
        let cfg = SvtSelectConfig::counting(eps, c, BudgetRatio::OneToCTwoThirds);
        let sv = ScoreVector::new(scores.clone()).unwrap();
        let sel = svt_select(&scores, sv.paper_threshold(c), &cfg, &mut rng).unwrap();
        prop_assert!(sel.len() <= c);
        let mut d = sel.clone();
        d.sort_unstable();
        d.dedup();
        prop_assert_eq!(d.len(), sel.len());
        for &i in &sel {
            prop_assert!(i < scores.len());
        }
    }

    #[test]
    fn em_top_c_selects_min_c_n_distinct(
        scores in scores_strategy(),
        c in 1usize..40,
        eps in 0.01f64..5.0,
        seed in any::<u64>(),
    ) {
        let mut rng = DpRng::seed_from_u64(seed);
        let em = EmTopC::new(eps, c, 1.0, true).unwrap();
        let sel = em.select(&scores, &mut rng).unwrap();
        prop_assert_eq!(sel.len(), c.min(scores.len()));
        let mut d = sel.clone();
        d.sort_unstable();
        d.dedup();
        prop_assert_eq!(d.len(), sel.len());
    }

    #[test]
    fn retraversal_subsumes_plain_svt_selection_bounds(
        scores in scores_strategy(),
        c in 1usize..10,
        k in 0.0f64..5.0,
        seed in any::<u64>(),
    ) {
        let mut rng = DpRng::seed_from_u64(seed);
        let cfg = RetraversalConfig::paper(1.0, c, k);
        let sv = ScoreVector::new(scores.clone()).unwrap();
        let out = svt_retraversal(&scores, sv.paper_threshold(c), &cfg, &mut rng).unwrap();
        prop_assert!(out.selected.len() <= c);
        prop_assert!(out.passes >= 1 && out.passes <= cfg.max_passes);
        prop_assert!(out.threshold_used >= sv.paper_threshold(c));
        let mut d = out.selected.clone();
        d.sort_unstable();
        d.dedup();
        prop_assert_eq!(d.len(), out.selected.len());
    }

    #[test]
    fn optimal_allocation_beats_sampled_alternatives(
        c in 1usize..400,
        monotonic in any::<bool>(),
        frac in 0.01f64..0.99,
    ) {
        let eps = 0.1;
        let r = allocation::optimal_ratio(c, monotonic);
        let e1_star = eps / (1.0 + r);
        let best = allocation::comparison_variance(e1_star, eps - e1_star, c, 1.0, monotonic);
        let e1 = eps * frac;
        let v = allocation::comparison_variance(e1, eps - e1, c, 1.0, monotonic);
        prop_assert!(v >= best * (1.0 - 1e-9));
    }

    #[test]
    fn run_svt_output_length_matches_halt_semantics(
        answers in prop::collection::vec(-100.0f64..100.0, 1..60),
        c in 1usize..6,
        seed in any::<u64>(),
    ) {
        let mut rng = DpRng::seed_from_u64(seed);
        let mut alg = Alg1::new(1.0, 1.0, c, &mut rng).unwrap();
        let run = run_svt(&mut alg, &answers, &Thresholds::Constant(0.0), &mut rng).unwrap();
        prop_assert!(run.positives() <= c);
        if run.halted {
            prop_assert_eq!(run.positives(), c);
            // Aborts exactly at the c-th ⊤: the last answer is positive.
            prop_assert!(run.answers.last().unwrap().is_positive());
        } else {
            prop_assert_eq!(run.examined(), answers.len());
        }
    }

    #[test]
    fn threshold_normalization_preserves_comparisons(
        answers in prop::collection::vec(-1e4f64..1e4, 1..50),
        thresholds in prop::collection::vec(-1e4f64..1e4, 50..51),
        seed in any::<u64>(),
    ) {
        // Running with per-query thresholds T must equal running the
        // normalized queries (q - T) against 0, given identical noise.
        let t = Thresholds::PerQuery(thresholds[..answers.len()].to_vec());
        let normalized = t.normalize(&answers).unwrap();
        let mut rng_a = DpRng::seed_from_u64(seed);
        let mut alg_a = Alg1::new(1.0, 1.0, 3, &mut rng_a).unwrap();
        let run_a = run_svt(&mut alg_a, &answers, &t, &mut rng_a).unwrap();
        let mut rng_b = DpRng::seed_from_u64(seed);
        let mut alg_b = Alg1::new(1.0, 1.0, 3, &mut rng_b).unwrap();
        let run_b = run_svt(&mut alg_b, &normalized, &Thresholds::Constant(0.0), &mut rng_b).unwrap();
        prop_assert_eq!(run_a.answers, run_b.answers);
    }

    #[test]
    fn budget_accountant_never_overspends(
        total in 0.1f64..10.0,
        charges in prop::collection::vec(0.001f64..1.0, 0..64),
    ) {
        let mut acct = BudgetAccountant::new(total).unwrap();
        for (i, &ch) in charges.iter().enumerate() {
            let _ = acct.charge(&format!("charge-{i}"), ch);
        }
        prop_assert!(acct.spent() <= total * (1.0 + 1e-9) + 1e-9);
        prop_assert!(acct.remaining() >= 0.0);
    }

    #[test]
    fn score_vector_top_c_is_sorted_and_maximal(
        scores in scores_strategy(),
        c in 1usize..30,
    ) {
        let sv = ScoreVector::new(scores.clone()).unwrap();
        let top = sv.top_c(c);
        prop_assert_eq!(top.len(), c.min(scores.len()));
        // Decreasing scores.
        for w in top.windows(2) {
            prop_assert!(scores[w[0]] >= scores[w[1]]);
        }
        // Maximality: no outsider strictly beats an insider.
        if let Some(&worst_in) = top.last() {
            for (i, &s) in scores.iter().enumerate() {
                if !top.contains(&i) {
                    prop_assert!(s <= scores[worst_in]);
                }
            }
        }
    }

    #[test]
    fn composition_inverse_is_tight_and_safe(
        eps_milli in 10u32..5_000,
        k in 1usize..2_000,
        delta_exp in 2u32..12,
    ) {
        // For any target, the solved per-instance budget must compose
        // back under the target (safe) and not be improvable by 2%
        // (tight).
        use sparse_vector::mechanisms::composition::{
            best_composition, per_instance_epsilon,
        };
        let target = ApproxDp::new(
            f64::from(eps_milli) / 1000.0,
            10f64.powi(-(delta_exp as i32)),
        ).unwrap();
        let per = per_instance_epsilon(target, k).unwrap();
        let achieved = best_composition(per, k, target.delta).unwrap();
        prop_assert!(achieved <= target.epsilon * (1.0 + 1e-9));
        let bumped = best_composition(per * 1.02, k, target.delta).unwrap();
        prop_assert!(bumped > target.epsilon * (1.0 - 1e-9));
        // Never worse than plain sequential composition.
        prop_assert!(per >= target.epsilon / k as f64 - 1e-15);
    }

    #[test]
    fn geometric_pmf_ratio_never_exceeds_epsilon(
        eps_centi in 1u32..400,
        k in -40i64..40,
    ) {
        // The DP guarantee of the two-sided geometric mechanism at the
        // mass-function level: shifting the true count by Δ = 1 changes
        // any output's probability by at most e^ε.
        let eps = f64::from(eps_centi) / 100.0;
        let d = TwoSidedGeometric::from_epsilon(eps, 1.0).unwrap();
        let ratio = d.pmf(k) / d.pmf(k + 1);
        prop_assert!(ratio <= eps.exp() * (1.0 + 1e-9));
        prop_assert!(ratio >= (-eps).exp() * (1.0 - 1e-9));
    }

    #[test]
    fn approx_svt_respects_cutoff_and_answers_shape(
        scores in scores_strategy(),
        c in 1usize..12,
        seed in any::<u64>(),
    ) {
        let mut rng = DpRng::seed_from_u64(seed);
        let config = ApproxSvtConfig {
            target: ApproxDp::new(1.0, 1e-6).unwrap(),
            c,
            sensitivity: 1.0,
            ratio: 1.0,
            monotonic: true,
        };
        let mut alg = ApproxSvt::new(config, &mut rng).unwrap();
        let sv = ScoreVector::new(scores.clone()).unwrap();
        let run = run_svt(
            &mut alg,
            &scores,
            &Thresholds::Constant(sv.paper_threshold(c)),
            &mut rng,
        ).unwrap();
        prop_assert!(run.positives() <= c);
        if run.halted {
            prop_assert_eq!(run.positives(), c);
        } else {
            prop_assert_eq!(run.examined(), scores.len());
        }
        // The plan never spends less per copy than plain composition.
        prop_assert!(alg.plan().per_instance_epsilon >= 1.0 / c as f64 - 1e-12);
    }

    #[test]
    fn grid_audit_of_identical_mechanisms_never_convicts(
        p_centi in 1u32..99,
        seed in any::<u64>(),
    ) {
        // Identical Bernoulli mechanisms on both "neighbors": with
        // simultaneous 95% coverage the certified loss must be tiny.
        let p = f64::from(p_centi) / 100.0;
        let mut rng = DpRng::seed_from_u64(seed);
        let grid = audit_output_grid(
            |r: &mut DpRng| r.bernoulli(p),
            |r: &mut DpRng| r.bernoulli(p),
            4_000,
            0.95,
            &mut rng,
        );
        prop_assert!(
            grid.epsilon_lower_bound() < 0.5,
            "certified {} on identical mechanisms",
            grid.epsilon_lower_bound()
        );
    }
}
